// Package loadgen is an open-loop load generator: each op class runs
// on its own arrival schedule (Poisson or fixed-rate), and latency is
// measured from the *intended* send time, not from when a worker got
// around to issuing the call. That distinction is the whole point —
// a closed-loop generator that waits for each response before sending
// the next request silently stops sending during a server stall, so
// the stall never shows up in its percentiles (coordinated omission).
// Here the schedule keeps producing intents during a stall; when the
// workers catch up, every delayed request carries its queue wait in
// its recorded latency, and the stall lands in p99.9 where it
// belongs.
//
// cmd/simload builds its workload on this package; the package itself
// knows nothing about HTTP or TIPPERS — an op is just a func(ctx)
// error.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

// Arrival selects the inter-arrival process of a class.
type Arrival int

const (
	// Poisson arrivals: exponential gaps around the target rate —
	// the realistic choice for independent building traffic.
	Poisson Arrival = iota
	// Fixed arrivals: constant gaps — the deterministic choice for
	// regression tests and pacing checks.
	Fixed
)

// ParseArrival maps a flag value to an Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "poisson":
		return Poisson, nil
	case "fixed", "uniform":
		return Fixed, nil
	}
	return 0, fmt.Errorf("loadgen: unknown arrival process %q (want poisson or fixed)", s)
}

// Op performs one operation. The error (if any) is counted but does
// not stop the run.
type Op func(ctx context.Context) error

// Class is one op class with its own schedule and recorder.
type Class struct {
	// Name labels the class in the report (ingest, point_query, ...).
	Name string
	// Rate is the target arrival rate in ops/second. Must be > 0.
	Rate float64
	// Arrival selects the inter-arrival process.
	Arrival Arrival
	// Workers bounds in-flight ops for this class (default 32).
	Workers int
	// Seed drives the Poisson gap sequence (and nothing else).
	Seed int64
	// ClosedLoop measures latency from the moment a worker starts
	// the call instead of from the intended send time. It exists to
	// demonstrate what open-loop measurement fixes — production runs
	// should never set it.
	ClosedLoop bool
	// Op is the operation to perform.
	Op Op
}

// queueCap bounds the pending-intent queue per class. At 1<<20
// intents a 1 kHz class can fall ~17 minutes behind before shedding;
// anything beyond that is a dead server, and shedding (counted in the
// report) is more honest than OOM.
const queueCap = 1 << 20

// latency histogram bounds: log-spaced ~7%% steps from 50µs to 2min,
// fine enough that p99.9 interpolation error stays under the step.
var latBounds = func() []float64 {
	var b []float64
	for v := 50e-6; v < 120; v *= 1.07 {
		b = append(b, v)
	}
	return b
}()

// recorder accumulates one class's measurements.
type recorder struct {
	hist      *telemetry.Histogram
	maxNanos  atomic.Int64
	completed atomic.Uint64
	errors    atomic.Uint64
	shed      atomic.Uint64
	scheduled atomic.Uint64
}

func (r *recorder) observe(d time.Duration) {
	r.hist.Observe(d.Seconds())
	r.completed.Add(1)
	for {
		old := r.maxNanos.Load()
		if int64(d) <= old || r.maxNanos.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Result is one class's end-of-run summary.
type Result struct {
	Class        string  `json:"class"`
	TargetRate   float64 `json:"target_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	Scheduled    uint64  `json:"scheduled"`
	Completed    uint64  `json:"completed"`
	Errors       uint64  `json:"errors"`
	Shed         uint64  `json:"shed"`
	P50Seconds   float64 `json:"p50_seconds"`
	P90Seconds   float64 `json:"p90_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	P999Seconds  float64 `json:"p999_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// Quantile returns the named quantile from the result ("p50", "p90",
// "p99", "p99.9", "max").
func (r Result) Quantile(q string) (float64, bool) {
	switch q {
	case "p50":
		return r.P50Seconds, true
	case "p90":
		return r.P90Seconds, true
	case "p99":
		return r.P99Seconds, true
	case "p99.9", "p999":
		return r.P999Seconds, true
	case "max":
		return r.MaxSeconds, true
	}
	return 0, false
}

// Runner drives a set of classes for a duration.
type Runner struct {
	Classes []Class
	// OnProgress, when set, is called roughly every second with
	// interim results.
	OnProgress func(elapsed time.Duration, results []Result)
}

// intent is one scheduled operation.
type intent struct {
	due time.Time
}

// classRun is the runtime state of one class.
type classRun struct {
	class Class
	rec   *recorder

	mu      sync.Mutex
	cond    *sync.Cond
	pending []intent
	closed  bool
}

func (cr *classRun) enqueue(it intent) bool {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if len(cr.pending) >= queueCap {
		return false
	}
	cr.pending = append(cr.pending, it)
	cr.cond.Signal()
	return true
}

func (cr *classRun) dequeue() (intent, bool) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	for len(cr.pending) == 0 && !cr.closed {
		cr.cond.Wait()
	}
	if len(cr.pending) == 0 {
		return intent{}, false
	}
	it := cr.pending[0]
	cr.pending = cr.pending[1:]
	return it, true
}

func (cr *classRun) close() {
	cr.mu.Lock()
	cr.closed = true
	cr.cond.Broadcast()
	cr.mu.Unlock()
}

// Run executes the workload for d, then drains in-flight and queued
// intents (bounded by a grace period) and returns per-class results.
// Cancelling ctx stops scheduling early; already-queued intents still
// drain.
func (r *Runner) Run(ctx context.Context, d time.Duration) ([]Result, error) {
	if d <= 0 {
		return nil, errors.New("loadgen: duration must be positive")
	}
	runs := make([]*classRun, 0, len(r.Classes))
	for _, c := range r.Classes {
		if c.Name == "" || c.Op == nil {
			return nil, fmt.Errorf("loadgen: class needs a name and an op: %+v", c.Name)
		}
		if c.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: class %s: rate must be positive", c.Name)
		}
		if c.Workers <= 0 {
			c.Workers = 32
		}
		cr := &classRun{class: c, rec: &recorder{hist: telemetry.NewHistogram(latBounds)}}
		cr.cond = sync.NewCond(&cr.mu)
		runs = append(runs, cr)
	}

	start := time.Now()
	deadline := start.Add(d)
	schedCtx, cancelSched := context.WithDeadline(ctx, deadline)
	defer cancelSched()
	// Ops get a grace period past the deadline to drain the queue;
	// after that they are cancelled so latencies stay bounded.
	grace := d / 10
	if grace < 5*time.Second {
		grace = 5 * time.Second
	}
	if grace > time.Minute {
		grace = time.Minute
	}
	opCtx, cancelOps := context.WithDeadline(context.Background(), deadline.Add(grace))
	defer cancelOps()

	var wg sync.WaitGroup
	for _, cr := range runs {
		// Workers: dequeue intents, run the op, record from the
		// intended time (open-loop) or call start (closed-loop).
		for w := 0; w < cr.class.Workers; w++ {
			wg.Add(1)
			go func(cr *classRun) {
				defer wg.Done()
				for {
					it, ok := cr.dequeue()
					if !ok {
						return
					}
					from := it.due
					if cr.class.ClosedLoop {
						from = time.Now()
					}
					err := cr.class.Op(opCtx)
					cr.rec.observe(time.Since(from))
					if err != nil {
						cr.rec.errors.Add(1)
					}
				}
			}(cr)
		}
		// Scheduler: emit intents on the arrival process until the
		// deadline. Intents are enqueued when due — a worker being
		// busy never delays the schedule, only the dequeue.
		wg.Add(1)
		go func(cr *classRun) {
			defer wg.Done()
			defer cr.close()
			rng := rand.New(rand.NewSource(cr.class.Seed))
			gap := func() time.Duration {
				if cr.class.Arrival == Fixed {
					return time.Duration(float64(time.Second) / cr.class.Rate)
				}
				return time.Duration(rng.ExpFloat64() / cr.class.Rate * float64(time.Second))
			}
			next := start
			for {
				if next.After(deadline) {
					return
				}
				// Sleep in short slices so cancellation is prompt.
				for {
					wait := time.Until(next)
					if wait <= 0 {
						break
					}
					if wait > 5*time.Millisecond {
						wait = 5 * time.Millisecond
					}
					select {
					case <-schedCtx.Done():
						return
					case <-time.After(wait):
					}
				}
				cr.rec.scheduled.Add(1)
				if !cr.enqueue(intent{due: next}) {
					cr.rec.shed.Add(1)
				}
				next = next.Add(gap())
			}
		}(cr)
	}

	// Progress reporter.
	progDone := make(chan struct{})
	if r.OnProgress != nil {
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-progDone:
					return
				case <-t.C:
					r.OnProgress(time.Since(start), collect(runs, time.Since(start)))
				}
			}
		}()
	}

	wg.Wait()
	close(progDone)
	elapsed := time.Since(start)
	if elapsed > d {
		elapsed = d // achieved rate is relative to the scheduling window
	}
	return collect(runs, elapsed), ctx.Err()
}

// collect summarises each class's recorder.
func collect(runs []*classRun, elapsed time.Duration) []Result {
	out := make([]Result, 0, len(runs))
	for _, cr := range runs {
		snap := cr.rec.hist.Snapshot()
		res := Result{
			Class:       cr.class.Name,
			TargetRate:  cr.class.Rate,
			Scheduled:   cr.rec.scheduled.Load(),
			Completed:   cr.rec.completed.Load(),
			Errors:      cr.rec.errors.Load(),
			Shed:        cr.rec.shed.Load(),
			P50Seconds:  snap.Quantile(0.5),
			P90Seconds:  snap.Quantile(0.9),
			P99Seconds:  snap.Quantile(0.99),
			P999Seconds: snap.Quantile(0.999),
			MaxSeconds:  time.Duration(cr.rec.maxNanos.Load()).Seconds(),
		}
		if snap.Count > 0 {
			res.MeanSeconds = snap.Sum / float64(snap.Count)
		}
		if s := elapsed.Seconds(); s > 0 {
			res.AchievedRate = math.Round(float64(res.Completed)/s*100) / 100
		}
		out = append(out, res)
	}
	return out
}
