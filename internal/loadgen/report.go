package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// StreamStats is the per-subscriber stream tally a harness records
// client-side, plus the node-side hub counters it read at run end.
type StreamStats struct {
	Subscribers []SubscriberStats `json:"subscribers,omitempty"`
	// Node-side hub counters (deltas over the run where cumulative).
	NodeDelivered   float64 `json:"node_delivered,omitempty"`
	NodeDropped     float64 `json:"node_dropped,omitempty"`
	NodeGaps        float64 `json:"node_gaps,omitempty"`
	NodeMaxLag      float64 `json:"node_max_lag_events,omitempty"`
	NodeGapAgeSecs  float64 `json:"node_gap_age_seconds,omitempty"`
	NodeDisconnects float64 `json:"node_disconnects,omitempty"`
}

// SubscriberStats is one stream subscriber's client-side view.
type SubscriberStats struct {
	ID      int    `json:"id"`
	Events  uint64 `json:"events"`
	Gaps    uint64 `json:"gaps"`
	Dropped uint64 `json:"dropped"`
	Errors  uint64 `json:"errors"`
}

// NodeInfo identifies the node a run targeted.
type NodeInfo struct {
	Building     string `json:"building,omitempty"`
	BuildingName string `json:"building_name,omitempty"`
	Population   int    `json:"population,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
}

// Report is the machine-readable end-of-run document simload writes
// and benchdiff's slo subcommand diffs.
type Report struct {
	Start           string             `json:"start"`
	DurationSeconds float64            `json:"duration_seconds"`
	Scenario        string             `json:"scenario"`
	Arrival         string             `json:"arrival"`
	Node            NodeInfo           `json:"node"`
	Classes         []Result           `json:"classes"`
	Streams         *StreamStats       `json:"streams,omitempty"`
	Verdicts        []Verdict          `json:"verdicts,omitempty"`
	ServerSLO       json.RawMessage    `json:"server_slo,omitempty"`
	StatsDelta      map[string]float64 `json:"stats_delta,omitempty"`
	Pass            bool               `json:"pass"`
}

// WriteFile writes the report as indented JSON to path ("-" for
// stdout).
func (r *Report) WriteFile(path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return &r, nil
}

// ClassResult returns the named class's result, if present.
func (r *Report) ClassResult(name string) (Result, bool) {
	for _, c := range r.Classes {
		if c.Class == name {
			return c, true
		}
	}
	return Result{}, false
}
