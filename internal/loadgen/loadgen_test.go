package loadgen

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestParseArrival(t *testing.T) {
	for s, want := range map[string]Arrival{"": Poisson, "poisson": Poisson, "fixed": Fixed, "Uniform": Fixed} {
		got, err := ParseArrival(s)
		if err != nil || got != want {
			t.Errorf("ParseArrival(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseArrival("zipf"); err == nil {
		t.Error("ParseArrival accepted garbage")
	}
}

func TestParseTargets(t *testing.T) {
	ts, err := ParseTargets("ingest:p99<500ms, point_query:p99.9<2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Class != "ingest" || ts[0].Quantile != "p99" ||
		ts[0].Threshold != 500*time.Millisecond || ts[1].Threshold != 2*time.Second {
		t.Fatalf("parsed %+v", ts)
	}
	for _, bad := range []string{"ingest p99<1s", "ingest:p42<1s", "ingest:p99<-3s", "ingest:p99"} {
		if _, err := ParseTargets(bad); err == nil {
			t.Errorf("ParseTargets(%q) accepted garbage", bad)
		}
	}
	if ts, err := ParseTargets(""); err != nil || ts != nil {
		t.Errorf("empty target list: %v, %v", ts, err)
	}
}

func TestEvaluate(t *testing.T) {
	targets, _ := ParseTargets("a:p99<100ms,b:p99<100ms,c:p99<100ms")
	results := []Result{
		{Class: "a", Completed: 10, P99Seconds: 0.05},
		{Class: "b", Completed: 10, P99Seconds: 0.5},
		// class c absent entirely
	}
	vs := Evaluate(targets, results)
	if len(vs) != 3 || !vs[0].Pass || vs[1].Pass || vs[2].Pass {
		t.Fatalf("verdicts %+v", vs)
	}
	if AllPass(vs) {
		t.Error("AllPass over failing verdicts")
	}
	// Zero-traffic classes fail their target rather than silently pass.
	vs = Evaluate(targets[:1], []Result{{Class: "a", Completed: 0}})
	if vs[0].Pass {
		t.Error("zero-traffic class passed its target")
	}
}

func TestPacingSustainsTargetRate(t *testing.T) {
	var calls int64
	var mu sync.Mutex
	r := &Runner{Classes: []Class{{
		Name: "pace", Rate: 500, Arrival: Fixed, Workers: 16,
		Op: func(ctx context.Context) error {
			mu.Lock()
			calls++
			mu.Unlock()
			return nil
		},
	}}}
	results, err := r.Run(context.Background(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	// 500/s for 2s ≈ 1000 scheduled; allow generous slack for CI
	// machines, but the open-loop property means a fast op should
	// complete essentially everything scheduled.
	if res.Scheduled < 900 || res.Scheduled > 1100 {
		t.Errorf("scheduled %d, want ≈1000", res.Scheduled)
	}
	if res.Completed != res.Scheduled-res.Shed {
		t.Errorf("completed %d != scheduled %d - shed %d", res.Completed, res.Scheduled, res.Shed)
	}
	if res.AchievedRate < 400 || res.AchievedRate > 600 {
		t.Errorf("achieved rate %.1f, want ≈500", res.AchievedRate)
	}
	if res.P99Seconds > 0.1 {
		t.Errorf("fast op p99 = %v, suspiciously slow", res.P99Seconds)
	}
}

// TestCoordinatedOmission is the regression test the harness exists
// for: a deliberate ~700ms server stall mid-run must dominate the
// open-loop p99/p99.9 (requests scheduled during the stall carry
// their queue wait), while the closed-loop measurement of the very
// same server barely notices (it simply stops sending and records a
// handful of ~stall-length samples that vanish below p99).
func TestCoordinatedOmission(t *testing.T) {
	const (
		rate  = 200.0
		dur   = 3 * time.Second
		stall = 700 * time.Millisecond
	)
	mkServer := func() (Op, func()) {
		var gate sync.RWMutex
		stallOnce := func() {
			gate.Lock()
			time.Sleep(stall)
			gate.Unlock()
		}
		op := func(ctx context.Context) error {
			gate.RLock()
			gate.RUnlock()
			time.Sleep(200 * time.Microsecond)
			return nil
		}
		return op, stallOnce
	}
	run := func(closed bool) Result {
		op, stallOnce := mkServer()
		// One worker: the closed-loop variant is genuinely
		// back-to-back, which is the degenerate behaviour the test
		// demonstrates. The open-loop variant with one worker queues
		// intents during the stall and charges the wait to each.
		r := &Runner{Classes: []Class{{
			Name: "co", Rate: rate, Arrival: Fixed, Workers: 1, ClosedLoop: closed, Op: op,
		}}}
		timer := time.AfterFunc(dur/3, stallOnce)
		defer timer.Stop()
		results, err := r.Run(context.Background(), dur)
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}

	open := run(false)
	closedRes := run(true)

	// ~140 requests are scheduled during the 700ms stall; at 600
	// total that's the top ~23%% of open-loop samples, so open-loop
	// p99/p99.9 must show a large fraction of the stall.
	if open.P99Seconds < stall.Seconds()/2 {
		t.Errorf("open-loop p99 = %.3fs, want ≥ %.3fs (stall hidden!)", open.P99Seconds, stall.Seconds()/2)
	}
	if open.P999Seconds < stall.Seconds()/2 {
		t.Errorf("open-loop p99.9 = %.3fs, want ≥ %.3fs", open.P999Seconds, stall.Seconds()/2)
	}
	// Closed-loop hides it: only the one request in flight during the
	// stall measures slow; with ~600 completed ops a single sample
	// sits above p99.9's interpolation only barely, and p99 stays
	// tiny. The gap between the two measurements is the finding.
	if closedRes.P99Seconds > stall.Seconds()/10 {
		t.Errorf("closed-loop p99 = %.3fs — expected coordinated omission to hide the stall (< %.3fs)",
			closedRes.P99Seconds, stall.Seconds()/10)
	}
	if open.P999Seconds < 5*closedRes.P99Seconds {
		t.Errorf("open p99.9 (%.3fs) not ≫ closed p99 (%.3fs)", open.P999Seconds, closedRes.P99Seconds)
	}
}

func TestRunValidation(t *testing.T) {
	noop := func(ctx context.Context) error { return nil }
	for _, r := range []*Runner{
		{Classes: []Class{{Name: "", Rate: 1, Op: noop}}},
		{Classes: []Class{{Name: "x", Rate: 0, Op: noop}}},
		{Classes: []Class{{Name: "x", Rate: 1}}},
	} {
		if _, err := r.Run(context.Background(), time.Second); err == nil {
			t.Errorf("invalid runner accepted: %+v", r.Classes[0])
		}
	}
	if _, err := (&Runner{}).Run(context.Background(), 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Start:           "2026-08-08T00:00:00Z",
		DurationSeconds: 10,
		Scenario:        "mixed",
		Arrival:         "poisson",
		Node:            NodeInfo{Building: "dbh", Population: 60, Seed: 1},
		Classes:         []Result{{Class: "ingest", TargetRate: 100, Completed: 990, P99Seconds: 0.01}},
		Streams:         &StreamStats{Subscribers: []SubscriberStats{{ID: 0, Events: 42}}, NodeMaxLag: 3},
		Verdicts:        []Verdict{{Class: "ingest", Quantile: "p99", ThresholdSeconds: 0.5, ObservedSeconds: 0.01, Pass: true}},
		Pass:            true,
	}
	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != "mixed" || len(got.Classes) != 1 || got.Streams.NodeMaxLag != 3 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if c, ok := got.ClassResult("ingest"); !ok || c.Completed != 990 {
		t.Fatalf("ClassResult: %+v %v", c, ok)
	}
	if _, ok := got.ClassResult("nope"); ok {
		t.Error("ClassResult found a missing class")
	}
}
