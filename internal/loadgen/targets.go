package loadgen

import (
	"fmt"
	"strings"
	"time"
)

// Target is a client-side SLO verdict rule: "class:quantile<threshold",
// e.g. "ingest:p99<250ms". The harness evaluates targets against its
// own open-loop measurements, independent of the server's /v1/slo view.
type Target struct {
	Class     string        `json:"class"`
	Quantile  string        `json:"quantile"`
	Threshold time.Duration `json:"threshold"`
}

// Verdict is one evaluated Target.
type Verdict struct {
	Class            string  `json:"class"`
	Quantile         string  `json:"quantile"`
	ThresholdSeconds float64 `json:"threshold_seconds"`
	ObservedSeconds  float64 `json:"observed_seconds"`
	Pass             bool    `json:"pass"`
}

// ParseTargets parses a comma-separated target list:
// "ingest:p99<500ms,point_query:p99.9<2s".
func ParseTargets(s string) ([]Target, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Target
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		colon := strings.Index(part, ":")
		lt := strings.Index(part, "<")
		if colon < 0 || lt < colon {
			return nil, fmt.Errorf("loadgen: bad target %q (want class:quantile<threshold)", part)
		}
		thr, err := time.ParseDuration(strings.TrimSpace(part[lt+1:]))
		if err != nil || thr <= 0 {
			return nil, fmt.Errorf("loadgen: bad threshold in target %q", part)
		}
		t := Target{
			Class:     strings.TrimSpace(part[:colon]),
			Quantile:  strings.TrimSpace(part[colon+1 : lt]),
			Threshold: thr,
		}
		if _, ok := (Result{}).Quantile(t.Quantile); !ok {
			return nil, fmt.Errorf("loadgen: bad quantile in target %q (want p50/p90/p99/p99.9/max)", part)
		}
		out = append(out, t)
	}
	return out, nil
}

// Evaluate checks each target against the matching class result.
// A target whose class produced no completed ops fails — a silent
// zero-traffic pass would defeat the gate.
func Evaluate(targets []Target, results []Result) []Verdict {
	byClass := make(map[string]Result, len(results))
	for _, r := range results {
		byClass[r.Class] = r
	}
	out := make([]Verdict, 0, len(targets))
	for _, t := range targets {
		v := Verdict{Class: t.Class, Quantile: t.Quantile, ThresholdSeconds: t.Threshold.Seconds()}
		if r, ok := byClass[t.Class]; ok && r.Completed > 0 {
			obs, _ := r.Quantile(t.Quantile)
			v.ObservedSeconds = obs
			v.Pass = obs <= t.Threshold.Seconds()
		}
		out = append(out, v)
	}
	return out
}

// AllPass reports whether every verdict passed.
func AllPass(vs []Verdict) bool {
	for _, v := range vs {
		if !v.Pass {
			return false
		}
	}
	return true
}
