package privacy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

func testModel(t testing.TB) *spatial.Model {
	t.Helper()
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	m.MustAdd("dbh", spatial.Space{ID: "dbh/2", Kind: spatial.KindFloor, Floor: 2})
	m.MustAdd("dbh/2", spatial.Space{ID: "dbh/2/2065", Kind: spatial.KindRoom, Floor: 2})
	m.MustAdd("dbh/2/2065", spatial.Space{ID: "dbh/2/2065/desk", Kind: spatial.KindZone, Floor: 2})
	m.MustAdd("dbh", spatial.Space{ID: "dbh/zone-direct", Kind: spatial.KindZone})
	return m
}

func roomObs() sensor.Observation {
	return sensor.Observation{
		SensorID:  "ble-1",
		Kind:      sensor.ObsBLESighting,
		Time:      time.Date(2017, 6, 1, 9, 0, 0, 0, time.UTC),
		SpaceID:   "dbh/2/2065",
		DeviceMAC: "aa:bb:cc:dd:ee:ff",
		UserID:    "mary",
		Value:     1,
	}
}

func TestCoarsenLocationLadder(t *testing.T) {
	m := testModel(t)
	tests := []struct {
		g    policy.Granularity
		want string
		ok   bool
	}{
		{policy.GranExact, "dbh/2/2065", true},
		{policy.GranRoom, "dbh/2/2065", true},
		{policy.GranFloor, "dbh/2", true},
		{policy.GranBuilding, "dbh", true},
		{policy.GranNone, "", false},
	}
	for _, tt := range tests {
		got, ok := CoarsenLocation(roomObs(), tt.g, m)
		if ok != tt.ok {
			t.Errorf("CoarsenLocation(%v) released=%v, want %v", tt.g, ok, tt.ok)
			continue
		}
		if ok && got.SpaceID != tt.want {
			t.Errorf("CoarsenLocation(%v) = %q, want %q", tt.g, got.SpaceID, tt.want)
		}
	}
}

func TestCoarsenZoneToRoom(t *testing.T) {
	m := testModel(t)
	o := roomObs()
	o.SpaceID = "dbh/2/2065/desk"
	got, ok := CoarsenLocation(o, policy.GranRoom, m)
	if !ok || got.SpaceID != "dbh/2/2065" {
		t.Errorf("zone->room = %q, %v", got.SpaceID, ok)
	}
	// A zone directly under the building, coarsened to floor: no floor
	// ancestor exists, so it falls back to the nearest coarser space.
	o.SpaceID = "dbh/zone-direct"
	got, ok = CoarsenLocation(o, policy.GranFloor, m)
	if !ok || got.SpaceID != "dbh" {
		t.Errorf("direct-zone->floor = %q, %v; want dbh", got.SpaceID, ok)
	}
}

func TestCoarsenAlreadyCoarse(t *testing.T) {
	m := testModel(t)
	o := roomObs()
	o.SpaceID = "dbh" // building-level observation
	got, ok := CoarsenLocation(o, policy.GranRoom, m)
	if !ok || got.SpaceID != "dbh" {
		t.Errorf("coarser-than-requested location changed: %q", got.SpaceID)
	}
}

func TestCoarsenUnknownSpaceSuppressed(t *testing.T) {
	m := testModel(t)
	o := roomObs()
	o.SpaceID = "elsewhere/99"
	got, ok := CoarsenLocation(o, policy.GranBuilding, m)
	if !ok || got.SpaceID != "" {
		t.Errorf("unknown space: = %q, %v; want suppressed field", got.SpaceID, ok)
	}
}

func TestCoarsenDoesNotMutateInput(t *testing.T) {
	m := testModel(t)
	o := roomObs()
	CoarsenLocation(o, policy.GranBuilding, m)
	if o.SpaceID != "dbh/2/2065" {
		t.Error("CoarsenLocation mutated its input")
	}
}

// TestCoarsenMonotone: coarsen(g1) then coarsen(g2) == coarsen(min).
func TestCoarsenMonotone(t *testing.T) {
	m := testModel(t)
	grans := []policy.Granularity{policy.GranBuilding, policy.GranFloor, policy.GranRoom, policy.GranExact}
	for _, g1 := range grans {
		for _, g2 := range grans {
			a, ok1 := CoarsenLocation(roomObs(), g1, m)
			if !ok1 {
				t.Fatalf("g1=%v suppressed", g1)
			}
			ab, ok2 := CoarsenLocation(a, g2, m)
			direct, ok3 := CoarsenLocation(roomObs(), g1.Min(g2), m)
			if !ok2 || !ok3 {
				t.Fatalf("unexpected suppression at %v/%v", g1, g2)
			}
			if ab.SpaceID != direct.SpaceID {
				t.Errorf("coarsen(%v)∘coarsen(%v) = %q, coarsen(min) = %q", g2, g1, ab.SpaceID, direct.SpaceID)
			}
		}
	}
}

func TestLaplaceStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	scale := 2.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, scale)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = scale for Laplace.
	if math.Abs(meanAbs-scale) > 0.05 {
		t.Errorf("Laplace E|X| = %v, want ~%v", meanAbs, scale)
	}
}

func TestNoiserEpsilonScaling(t *testing.T) {
	// Smaller epsilon => more noise. Compare mean absolute deviation.
	mad := func(eps float64) float64 {
		n := NewNoiser(1, 42)
		var sum float64
		const trials = 20000
		for i := 0; i < trials; i++ {
			sum += math.Abs(n.Noise(100, eps) - 100)
		}
		return sum / trials
	}
	loose := mad(1.0) // scale 1
	tight := mad(0.1) // scale 10
	if tight < 5*loose {
		t.Errorf("epsilon scaling wrong: mad(0.1)=%v should be ~10x mad(1.0)=%v", tight, loose)
	}
}

func TestNoiserZeroEpsilonReleasesNoSignal(t *testing.T) {
	n := NewNoiser(1, 1)
	// With epsilon <= 0 the output must not track the input.
	var sum float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		sum += n.Noise(1e9, 0)
	}
	if math.Abs(sum/trials) > 1 {
		t.Errorf("zero-epsilon noise leaks signal: mean=%v", sum/trials)
	}
}

func TestNoiserDeterministicSeed(t *testing.T) {
	a := NewNoiser(1, 99).Noise(5, 1)
	b := NewNoiser(1, 99).Noise(5, 1)
	if a != b {
		t.Errorf("same seed, different noise: %v vs %v", a, b)
	}
}

func TestPseudonymizerStableAndKeyed(t *testing.T) {
	p1 := NewPseudonymizer([]byte("key-1"))
	p2 := NewPseudonymizer([]byte("key-2"))
	a := p1.Pseudonym("aa:bb:cc:dd:ee:ff")
	b := p1.Pseudonym("aa:bb:cc:dd:ee:ff")
	c := p1.Pseudonym("11:22:33:44:55:66")
	d := p2.Pseudonym("aa:bb:cc:dd:ee:ff")
	if a != b {
		t.Error("pseudonyms not stable under one key")
	}
	if a == c {
		t.Error("distinct MACs collide")
	}
	if a == d {
		t.Error("pseudonyms identical across keys")
	}
	if !strings.HasPrefix(a, "pseud-") {
		t.Errorf("pseudonym %q not prefixed", a)
	}
}

func TestPseudonymizeObservation(t *testing.T) {
	p := NewPseudonymizer([]byte("k"))
	o := roomObs()
	got := p.PseudonymizeObservation(o)
	if got.DeviceMAC == o.DeviceMAC || got.UserID != "" {
		t.Errorf("pseudonymized = %+v", got)
	}
	if o.UserID != "mary" {
		t.Error("input mutated")
	}
	empty := p.PseudonymizeObservation(sensor.Observation{})
	if empty.DeviceMAC != "" {
		t.Error("empty MAC got a pseudonym")
	}
}

func TestKAnonymousCounts(t *testing.T) {
	mk := func(space, user string) sensor.Observation {
		return sensor.Observation{SpaceID: space, UserID: user}
	}
	obs := []sensor.Observation{
		mk("room-a", "u1"), mk("room-a", "u2"), mk("room-a", "u3"),
		mk("room-a", "u1"), // duplicate subject, must not double-count
		mk("room-b", "u4"), mk("room-b", "u5"),
		mk("room-c", "u6"),
		mk("room-d", ""), // unattributed, ignored
	}
	keyOf := func(o sensor.Observation) string { return o.SpaceID }
	subjOf := func(o sensor.Observation) string { return o.UserID }

	got := KAnonymousCounts(obs, 2, keyOf, subjOf)
	if len(got) != 2 {
		t.Fatalf("k=2: %v", got)
	}
	if got[0].Key != "room-a" || got[0].Count != 3 || got[1].Key != "room-b" || got[1].Count != 2 {
		t.Errorf("k=2 counts = %v", got)
	}
	if got := KAnonymousCounts(obs, 4, keyOf, subjOf); len(got) != 0 {
		t.Errorf("k=4 should suppress everything: %v", got)
	}
	if got := KAnonymousCounts(obs, 0, keyOf, subjOf); len(got) != 3 {
		t.Errorf("k<1 clamps to 1: %v", got)
	}
}

func TestTransformerApply(t *testing.T) {
	tr := NewTransformer(testModel(t), 1, []byte("key"))
	o := roomObs()

	got, ok, err := tr.Apply(policy.Rule{Action: policy.ActionAllow}, o)
	if err != nil || !ok || got.SpaceID != o.SpaceID {
		t.Errorf("allow = %+v, %v, %v", got, ok, err)
	}

	_, ok, err = tr.Apply(policy.Rule{Action: policy.ActionDeny}, o)
	if err != nil || ok {
		t.Errorf("deny released data")
	}

	got, ok, err = tr.Apply(policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranBuilding}, o)
	if err != nil || !ok || got.SpaceID != "dbh" {
		t.Errorf("limit-building = %q, %v, %v", got.SpaceID, ok, err)
	}

	got, ok, err = tr.Apply(policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranNone}, o)
	if err != nil || ok {
		t.Error("limit-none released data")
	}

	got, ok, err = tr.Apply(policy.Rule{Action: policy.ActionLimit, NoiseEpsilon: 0.5}, o)
	if err != nil || !ok {
		t.Fatalf("limit-noise failed: %v", err)
	}
	if got.Value == o.Value {
		t.Error("noise did not perturb value")
	}
	if got.SpaceID != o.SpaceID {
		t.Error("noise-only rule changed location")
	}

	if _, _, err := tr.Apply(policy.Rule{}, o); err == nil {
		t.Error("zero rule accepted")
	}
}

func TestKindForGranularity(t *testing.T) {
	for g, want := range map[policy.Granularity]spatial.Kind{
		policy.GranBuilding: spatial.KindBuilding,
		policy.GranFloor:    spatial.KindFloor,
		policy.GranRoom:     spatial.KindRoom,
	} {
		got, ok := KindForGranularity(g)
		if !ok || got != want {
			t.Errorf("KindForGranularity(%v) = %v, %v", g, got, ok)
		}
	}
	for _, g := range []policy.Granularity{policy.GranExact, policy.GranNone, 0} {
		if _, ok := KindForGranularity(g); ok {
			t.Errorf("KindForGranularity(%v) should not map", g)
		}
	}
}
