// Package privacy implements the enforcement mechanisms the paper's
// §V.C enumerates for "how" policies and preferences are enforced on
// user data: accept/deny data access, degrade granularity, add noise,
// aggregate, and pseudonymize identifiers.
//
// Every mechanism transforms a *copy* of the observation; the stored
// ground truth is never mutated, so the same data can be released at
// different precisions to differently-privileged requesters.
package privacy

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// KindForGranularity maps a release granularity to the spatial kind
// locations are coarsened to.
func KindForGranularity(g policy.Granularity) (spatial.Kind, bool) {
	switch g {
	case policy.GranBuilding:
		return spatial.KindBuilding, true
	case policy.GranFloor:
		return spatial.KindFloor, true
	case policy.GranRoom:
		return spatial.KindRoom, true
	default:
		return 0, false
	}
}

// CoarsenLocation rewrites the observation's location to at most the
// given granularity using the spatial model's hierarchy:
// room → floor → building. It reports whether the observation may be
// released at all (GranNone means no).
//
// Coarsening is monotone: coarsening to g1 then to g2 equals
// coarsening to min(g1, g2).
func CoarsenLocation(o sensor.Observation, g policy.Granularity, spaces *spatial.Model) (sensor.Observation, bool) {
	if g == policy.GranNone {
		return sensor.Observation{}, false
	}
	if g == policy.GranExact || !g.Valid() {
		return o, true
	}
	out := o.Clone()
	kind, ok := KindForGranularity(g)
	if !ok {
		return out, true
	}
	if o.SpaceID == "" || spaces == nil {
		return out, true
	}
	sp, found := spaces.Lookup(o.SpaceID)
	if !found {
		// Unknown location: releasing it as-is could leak more than g
		// permits, so suppress the field.
		out.SpaceID = ""
		return out, true
	}
	if anc := sp.AncestorOfKind(kind); anc != nil {
		out.SpaceID = anc.ID
	} else if sp.Kind > kind {
		// Finer than requested but no ancestor of the exact kind
		// (e.g. a zone directly under a building): fall back to the
		// nearest coarser ancestor, or the root.
		cur := sp
		for cur.Parent() != nil && cur.Kind > kind {
			cur = cur.Parent()
		}
		out.SpaceID = cur.ID
	}
	// else: the location is already at or coarser than g; keep it.
	return out, true
}

// Laplace draws one Laplace(0, scale) sample from rng.
func Laplace(rng *rand.Rand, scale float64) float64 {
	// Inverse-CDF sampling: u uniform in (-0.5, 0.5).
	u := rng.Float64() - 0.5
	return -scale * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}

// Noiser adds Laplace noise to numeric observation values under a
// per-release epsilon (the standard Laplace mechanism with the given
// query sensitivity). It is safe for concurrent use.
type Noiser struct {
	mu          sync.Mutex
	rng         *rand.Rand
	sensitivity float64
}

// NewNoiser returns a Noiser with the given query sensitivity. seed
// fixes the random stream, keeping experiments reproducible.
func NewNoiser(sensitivity float64, seed int64) *Noiser {
	if sensitivity <= 0 {
		sensitivity = 1
	}
	return &Noiser{rng: rand.New(rand.NewSource(seed)), sensitivity: sensitivity}
}

// Noise returns value + Laplace(sensitivity/epsilon) noise.
// Non-positive epsilons release nothing useful: the method returns
// pure noise around zero, which is the safe failure mode.
func (n *Noiser) Noise(value, epsilon float64) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epsilon <= 0 {
		return Laplace(n.rng, n.sensitivity)
	}
	return value + Laplace(n.rng, n.sensitivity/epsilon)
}

// NoiseObservation returns a copy of o with its numeric value noised.
func (n *Noiser) NoiseObservation(o sensor.Observation, epsilon float64) sensor.Observation {
	out := o.Clone()
	out.Value = n.Noise(o.Value, epsilon)
	return out
}

// Pseudonymizer replaces device identifiers with stable keyed
// pseudonyms (HMAC-SHA256), the mechanism behind the WiFi-AP
// "hash_mac" setting. The same MAC always maps to the same pseudonym
// under one key, preserving utility for per-device analytics while
// breaking linkage to the hardware identifier.
type Pseudonymizer struct {
	key []byte
}

// NewPseudonymizer returns a Pseudonymizer with the given secret key.
func NewPseudonymizer(key []byte) *Pseudonymizer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Pseudonymizer{key: k}
}

// Pseudonym returns the keyed pseudonym for an identifier, prefixed
// so pseudonyms are recognizable and never collide with real MACs.
func (p *Pseudonymizer) Pseudonym(id string) string {
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte(id))
	return "pseud-" + hex.EncodeToString(mac.Sum(nil))[:16]
}

// PseudonymizeObservation returns a copy of o with its DeviceMAC
// replaced by a pseudonym (and the attributed user cleared, since the
// point is unlinkability).
func (p *Pseudonymizer) PseudonymizeObservation(o sensor.Observation) sensor.Observation {
	out := o.Clone()
	if out.DeviceMAC != "" {
		out.DeviceMAC = p.Pseudonym(out.DeviceMAC)
	}
	out.UserID = ""
	return out
}

// AggregateCount is one k-anonymous bucket: at least K distinct
// subjects contributed.
type AggregateCount struct {
	Key   string // grouping key, e.g. a space ID
	Count int    // distinct subjects observed
}

// KAnonymousCounts groups observations by key and returns per-group
// distinct-subject counts, suppressing groups with fewer than k
// subjects. keyOf extracts the grouping key (e.g. the observation's
// space); subjectOf extracts the subject identity (user ID or device
// MAC). It implements "only aggregated or anonymized" release from
// the paper's Peppet-derived requirements (§IV.B).
func KAnonymousCounts(obs []sensor.Observation, k int, keyOf, subjectOf func(sensor.Observation) string) []AggregateCount {
	if k < 1 {
		k = 1
	}
	groups := make(map[string]map[string]bool)
	for _, o := range obs {
		subj := subjectOf(o)
		if subj == "" {
			continue
		}
		key := keyOf(o)
		if groups[key] == nil {
			groups[key] = make(map[string]bool)
		}
		groups[key][subj] = true
	}
	out := make([]AggregateCount, 0, len(groups))
	for key, subjects := range groups {
		if len(subjects) >= k {
			out = append(out, AggregateCount{Key: key, Count: len(subjects)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Transformer bundles the mechanisms and applies a policy rule to an
// observation, producing the released view.
type Transformer struct {
	Spaces *spatial.Model
	Noiser *Noiser
	Pseud  *Pseudonymizer
}

// NewTransformer wires a transformer over the given spatial model,
// with a unit-sensitivity noiser and a keyed pseudonymizer.
func NewTransformer(spaces *spatial.Model, noiseSeed int64, pseudKey []byte) *Transformer {
	return &Transformer{
		Spaces: spaces,
		Noiser: NewNoiser(1, noiseSeed),
		Pseud:  NewPseudonymizer(pseudKey),
	}
}

// Apply enforces rule on the observation: Allow passes it through,
// Deny suppresses it, Limit degrades it (granularity clamp, then
// noise). released reports whether anything may be returned to the
// requester.
func (t *Transformer) Apply(rule policy.Rule, o sensor.Observation) (out sensor.Observation, released bool, err error) {
	switch rule.Action {
	case policy.ActionAllow:
		return o, true, nil
	case policy.ActionDeny:
		return sensor.Observation{}, false, nil
	case policy.ActionLimit:
		out = o
		if rule.MaxGranularity.Valid() {
			var ok bool
			out, ok = CoarsenLocation(out, rule.MaxGranularity, t.Spaces)
			if !ok {
				return sensor.Observation{}, false, nil
			}
		}
		if rule.NoiseEpsilon > 0 {
			out = t.Noiser.NoiseObservation(out, rule.NoiseEpsilon)
		}
		return out, true, nil
	default:
		return sensor.Observation{}, false, fmt.Errorf("privacy: invalid action %d", int(rule.Action))
	}
}
