package core

import (
	"context"
	"errors"
	"testing"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/query"
	"github.com/tippers/tippers/internal/sensor"
)

func conciergeRequester() query.Requester {
	return query.Requester{ServiceID: "concierge", Purpose: policy.PurposeProvidingService}
}

func ingestQueryFixture(t *testing.T, f *fixture) {
	t.Helper()
	// mary on ap-2 (dbh/2/r0) three times, bob on ap-1 (dbh/1/r0) twice.
	for i := 0; i < 3; i++ {
		if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:02", "ap-1", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryEndToEnd(t *testing.T) {
	f := newFixture(t)
	ingestQueryFixture(t, f)

	resp, err := f.bms.Query(context.Background(), conciergeRequester(),
		"SELECT sensor_id, COUNT(*) AS n FROM observations GROUP BY sensor_id ORDER BY sensor_id")
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Result
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "ap-1" || res.Rows[0][1].Num != 2 {
		t.Errorf("ap-1 row = %v", res.Rows[0])
	}
	if res.Rows[1][0].Str != "ap-2" || res.Rows[1][1].Num != 3 {
		t.Errorf("ap-2 row = %v", res.Rows[1])
	}
	if res.Stats.ScannedRows != 5 || res.Stats.ReleasedRows != 5 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if resp.Trace == nil || resp.Trace.Path != "query" || !resp.Trace.Allowed {
		t.Fatalf("trace = %+v", resp.Trace)
	}
	if len(resp.Trace.Stages) != 3 {
		t.Errorf("stages = %+v", resp.Trace.Stages)
	}
	// The trace is retained in the ring.
	recent := f.bms.RecentTraces(1)
	if len(recent) != 1 || recent[0].Path != "query" {
		t.Errorf("retained trace = %+v", recent)
	}
}

// TestQueryPreferenceShrinksResults is the E11 scenario: the same
// query returns less once a subject opts out mid-session.
func TestQueryPreferenceShrinksResults(t *testing.T) {
	f := newFixture(t)
	ingestQueryFixture(t, f)

	const sql = "SELECT user_id, space_id FROM observations WHERE kind = 'wifi_access_point'"
	before, err := f.bms.Query(context.Background(), conciergeRequester(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Result.Rows) != 5 {
		t.Fatalf("rows before = %d", len(before.Result.Rows))
	}

	for _, p := range policy.Preference2NoLocation("bob") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	after, err := f.bms.Query(context.Background(), conciergeRequester(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Result.Rows) != 3 {
		t.Fatalf("rows after opt-out = %d, want 3", len(after.Result.Rows))
	}
	for _, row := range after.Result.Rows {
		if row[0].Str == "bob" {
			t.Fatalf("opted-out subject released: %v", row)
		}
	}
	if after.Result.Stats.DeniedRows != 2 {
		t.Errorf("DeniedRows = %d, want 2", after.Result.Stats.DeniedRows)
	}
}

func TestQueryPushdownUsesStoreFilter(t *testing.T) {
	f := newFixture(t)
	ingestQueryFixture(t, f)

	// A sensor-scoped query must scan only that sensor's stripe: the
	// stats' scanned count equals the sensor's rows, not the store's.
	resp, err := f.bms.Query(context.Background(), conciergeRequester(),
		"SELECT seq FROM observations WHERE sensor_id = 'ap-1'")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Stats.ScannedRows != 2 {
		t.Errorf("ScannedRows = %d, want 2 (sensor filter pushed down)", resp.Result.Stats.ScannedRows)
	}

	// Space predicates expand to the spatial subtree before the scan.
	resp, err = f.bms.Query(context.Background(), conciergeRequester(),
		"SELECT seq FROM observations WHERE space_id = 'dbh/2'")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Stats.ScannedRows != 3 {
		t.Errorf("ScannedRows = %d, want 3 (dbh/2 subtree)", resp.Result.Stats.ScannedRows)
	}
}

func TestQueryOccupancyMatchesRequestOccupancy(t *testing.T) {
	f := newFixture(t)
	ingestQueryFixture(t, f)

	resp, err := f.bms.Query(context.Background(), conciergeRequester(),
		"SELECT * FROM occupancy ORDER BY space_id")
	if err != nil {
		t.Fatal(err)
	}
	occ, err := f.bms.RequestOccupancy(enforce.Request{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, Time: f.now,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != len(occ.Aggregates) {
		t.Fatalf("query occupancy %v != request occupancy %v", resp.Result.Rows, occ.Aggregates)
	}
	for i, a := range occ.Aggregates {
		row := resp.Result.Rows[i]
		if row[0].Str != a.Key || int(row[1].Num) != a.Count {
			t.Errorf("row %d = %v, want %+v", i, row, a)
		}
	}
}

func TestQueryAuditScopedToRequester(t *testing.T) {
	f := newFixture(t)
	ingestQueryFixture(t, f)

	// Generate decisions about mary and bob.
	for _, subject := range []string{"mary", "bob", "mary"} {
		if _, err := f.bms.RequestUser(enforce.Request{
			ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
			Kind: sensor.ObsWiFiConnect, SubjectID: subject, Time: f.now,
		}); err != nil {
			t.Fatal(err)
		}
	}

	r := conciergeRequester()
	r.UserID = "mary"
	resp, err := f.bms.Query(context.Background(), r,
		"SELECT subject_id, path, allowed FROM audit")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 2 {
		t.Fatalf("rows = %v, want mary's 2 decisions", resp.Result.Rows)
	}
	for _, row := range resp.Result.Rows {
		if row[0].Str != "mary" {
			t.Fatalf("foreign subject in audit view: %v", row)
		}
	}

	// Without a user identity the audit table is rejected, and the
	// rejection itself lands in the trace ring.
	r.UserID = ""
	_, err = f.bms.Query(context.Background(), r, "SELECT * FROM audit")
	var ee *query.EnforceError
	if !errors.As(err, &ee) {
		t.Fatalf("want *query.EnforceError, got %v", err)
	}
	recent := f.bms.RecentTraces(1)
	if len(recent) != 1 || recent[0].Allowed || recent[0].Path != "query" {
		t.Errorf("rejection trace = %+v", recent)
	}
}

func TestQueryTypedErrors(t *testing.T) {
	f := newFixture(t)
	var pe *query.ParseError
	if _, err := f.bms.Query(context.Background(), conciergeRequester(), "SELEC *"); !errors.As(err, &pe) {
		t.Errorf("want *query.ParseError, got %v", err)
	}
	var le *query.PlanError
	if _, err := f.bms.Query(context.Background(), conciergeRequester(), "SELECT nope FROM observations"); !errors.As(err, &le) {
		t.Errorf("want *query.PlanError, got %v", err)
	}
}
