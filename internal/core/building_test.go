package core

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

func TestRunAutomationPolicy1(t *testing.T) {
	f := newFixture(t)
	// Occupy the HVAC unit's room (hvac-1 lives in dbh/2/r0) and give
	// it a warm temperature reading.
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", -5)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bms.Store().Append(sensor.Observation{
		SensorID: "temp-src", Kind: sensor.ObsTempReading,
		SpaceID: "dbh/2/r0", Time: f.now.Add(-5 * time.Minute), Value: 75,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.RegisterPolicy(policy.Policy1Comfort("dbh", 70)); err != nil {
		t.Fatal(err)
	}
	acts, err := f.bms.RunAutomation(f.now)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].SensorID != "hvac-1" {
		t.Fatalf("actuations = %+v", acts)
	}
	if acts[0].Changes["target_temp_f"] != "70" || acts[0].Changes["fan_speed"] != "medium" {
		t.Errorf("actuation = %+v", acts[0])
	}
	unit, _ := f.bms.Sensors().Get("hvac-1")
	if unit.FloatSetting("target_temp_f") != 70 {
		t.Error("setpoint not applied")
	}
}

func TestRunAutomationNoPolicies(t *testing.T) {
	f := newFixture(t)
	acts, err := f.bms.RunAutomation(f.now)
	if err != nil || len(acts) != 0 {
		t.Errorf("RunAutomation = %+v, %v", acts, err)
	}
}

func TestCheckAccessPolicy3(t *testing.T) {
	f := newFixture(t)
	// door-1 guards dbh/1/r1.
	for _, p := range policy.Policy3MeetingRoomAccess("dbh/1/r1") {
		if err := f.bms.RegisterPolicy(p); err != nil {
			t.Fatal(err)
		}
	}
	// Card and fingerprint both satisfy card-or-fingerprint.
	for _, method := range []string{"card", "fingerprint"} {
		d, err := f.bms.CheckAccess("mary", "dbh/1/r1", method, f.now)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Allowed || d.PolicyID != "policy-3-access-1" {
			t.Errorf("%s: decision = %+v", method, d)
		}
	}
	// An unsupported method is rejected.
	d, err := f.bms.CheckAccess("mary", "dbh/1/r1", "pin", f.now)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Errorf("pin accepted: %+v", d)
	}
	// Attempts are logged as card swipes attributed to the user.
	swipes := f.bms.Store().Query(obstore.Filter{Kind: sensor.ObsCardSwipe, UserID: "mary"})
	if len(swipes) != 3 {
		t.Errorf("swipe log = %d entries, want 3", len(swipes))
	}
	if swipes[2].Payload["result"] != "denied" {
		t.Errorf("last swipe = %+v", swipes[2])
	}
	// Ungoverned spaces are open.
	open, err := f.bms.CheckAccess("mary", "dbh/2/r2", "card", f.now)
	if err != nil || !open.Allowed || open.PolicyID != "" {
		t.Errorf("open space decision = %+v, %v", open, err)
	}
	if _, err := f.bms.CheckAccess("ghost", "dbh/1/r1", "card", f.now); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestCheckAccessModeSpecific(t *testing.T) {
	f := newFixture(t)
	p := policy.Policy3MeetingRoomAccess("dbh/1/r1")[0]
	p.Settings = map[string]string{"mode": "fingerprint"}
	if err := f.bms.RegisterPolicy(p); err != nil {
		t.Fatal(err)
	}
	if d, _ := f.bms.CheckAccess("mary", "dbh/1/r1", "card", f.now); d.Allowed {
		t.Error("card accepted under fingerprint-only mode")
	}
	if d, _ := f.bms.CheckAccess("mary", "dbh/1/r1", "fingerprint", f.now); !d.Allowed {
		t.Error("fingerprint rejected under fingerprint-only mode")
	}
}

func TestRequestDisclosurePolicy4(t *testing.T) {
	f := newFixture(t)
	// Event in dbh/2/r0; audience: grad students (mary).
	p := policy.Policy4EventDisclosure("dbh/2/r0", profile.GroupGradStudent)
	if err := f.bms.RegisterPolicy(p); err != nil {
		t.Fatal(err)
	}

	// No location yet: proximity unknown, denied.
	d, err := f.bms.RequestDisclosure(p.ID, "mary", f.now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Errorf("disclosed without location: %+v", d)
	}

	// Mary appears at the event room (ap-2 is in dbh/2/r0).
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", -5)); err != nil {
		t.Fatal(err)
	}
	d, err = f.bms.RequestDisclosure(p.ID, "mary", f.now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Location != "dbh/2/r0" {
		t.Errorf("nearby participant denied: %+v", d)
	}

	// Bob is faculty, not in the audience, even when nearby.
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:02", "ap-2", -3)); err != nil {
		t.Fatal(err)
	}
	d, err = f.bms.RequestDisclosure(p.ID, "bob", f.now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Errorf("non-participant disclosed: %+v", d)
	}

	// Mary far away (ap-1 is on floor 1): outside the proximity space.
	f2 := newFixture(t)
	if err := f2.bms.RegisterPolicy(p); err != nil {
		t.Fatal(err)
	}
	if err := f2.bms.Ingest(f2.wifiObs("aa:00:00:00:00:01", "ap-1", -5)); err != nil {
		t.Fatal(err)
	}
	d, err = f2.bms.RequestDisclosure(p.ID, "mary", f2.now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Errorf("far participant disclosed: %+v", d)
	}

	// Stale location does not count.
	f3 := newFixture(t)
	if err := f3.bms.RegisterPolicy(p); err != nil {
		t.Fatal(err)
	}
	if err := f3.bms.Ingest(f3.wifiObs("aa:00:00:00:00:01", "ap-2", -120)); err != nil {
		t.Fatal(err)
	}
	d, err = f3.bms.RequestDisclosure(p.ID, "mary", f3.now, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Errorf("stale location disclosed: %+v", d)
	}
}

// TestDeriveOccupancyPreference1EndToEnd closes the Preference 1 data
// path: presence signals in mary's office become attributed occupancy
// observations, and the after-hours preference suppresses them while
// business-hours queries succeed.
func TestDeriveOccupancyPreference1EndToEnd(t *testing.T) {
	f := newFixture(t)
	// mary's office is dbh/2/r0 (fixture profile); ap-2 and ble-1 are
	// installed there. She is present at 10am and again at 9pm.
	morning := f.now.Add(-4 * time.Hour) // 10:00
	evening := f.now.Add(7 * time.Hour)  // 21:00
	for _, ts := range []time.Time{morning, evening} {
		if err := f.bms.Ingest(sensor.Observation{
			SensorID:  "ap-2",
			Kind:      sensor.ObsWiFiConnect,
			DeviceMAC: "aa:00:00:00:00:01",
			Time:      ts,
		}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := f.bms.DeriveOccupancy(f.now.Add(-6*time.Hour), f.now.Add(9*time.Hour), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("derived %d occupancy observations, want 2", n)
	}
	// Derived office occupancy is attributed to mary.
	occ := f.bms.Store().Query(obstore.Filter{Kind: sensor.ObsOccupancy})
	for _, o := range occ {
		if o.SpaceID == "dbh/2/r0" && o.UserID != "mary" {
			t.Errorf("office occupancy unattributed: %+v", o)
		}
	}

	if err := f.bms.SetPreference(policy.Preference1OfficeOccupancy("mary", "dbh/2/r0")); err != nil {
		t.Fatal(err)
	}
	req := enforce.Request{
		ServiceID: "smart-meeting",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsOccupancy,
		SubjectID: "mary",
		SpaceID:   "dbh/2/r0",
	}
	// Business hours: the morning occupancy is released.
	req.Time = f.now
	resp, err := f.bms.RequestUser(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Allowed || len(resp.Observations) != 2 {
		t.Fatalf("business-hours response = %+v (%d obs)", resp.Decision, len(resp.Observations))
	}
	// After hours: denied outright.
	req.Time = f.now.Add(8 * time.Hour) // 22:00
	resp, err = f.bms.RequestUser(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decision.Allowed {
		t.Fatalf("after-hours office occupancy released: %+v", resp.Decision)
	}
}

func TestDeriveOccupancyValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.bms.DeriveOccupancy(f.now, f.now, time.Minute); err == nil {
		t.Error("empty window accepted")
	}
}

func TestRequestDisclosureErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.bms.RequestDisclosure("nope", "mary", f.now, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := f.bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bms.RequestDisclosure("policy-2-emergency-location", "mary", f.now, 0); err == nil {
		t.Error("non-disclosure policy accepted")
	}
	p := policy.Policy4EventDisclosure("dbh/2/r0", profile.GroupGradStudent)
	if err := f.bms.RegisterPolicy(p); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bms.RequestDisclosure(p.ID, "ghost", f.now, 0); err == nil {
		t.Error("unknown user accepted")
	}
}
