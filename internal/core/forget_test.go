package core

import (
	"testing"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

func TestForgetUserErasesEverythingWithoutOverrides(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 4; i++ {
		if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:02", "ap-1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
		t.Fatal(err)
	}

	deleted, retained, err := f.bms.ForgetUser("mary")
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 4 || retained != 0 {
		t.Errorf("ForgetUser = (%d, %d), want (4, 0)", deleted, retained)
	}
	if got := f.bms.Store().Count(obstore.Filter{UserID: "mary"}); got != 0 {
		t.Errorf("mary still has %d observations", got)
	}
	if got := f.bms.Store().Count(obstore.Filter{UserID: "bob"}); got != 1 {
		t.Errorf("bob's data touched: %d", got)
	}
	if got := f.bms.Preferences("mary"); len(got) != 0 {
		t.Errorf("preferences survived: %+v", got)
	}
	if _, _, err := f.bms.ForgetUser("ghost"); err == nil {
		t.Error("unknown user forgotten")
	}
}

func TestForgetUserRetainsOverrideCollections(t *testing.T) {
	f := newFixture(t)
	// Policy 2: wifi logs are an emergency-response collection with
	// override; they survive erasure.
	if err := f.bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", i)); err != nil {
			t.Fatal(err)
		}
	}
	// A BLE sighting is outside Policy 2's wifi scope: erasable.
	if err := f.bms.Ingest(sensor.Observation{
		SensorID: "ble-1", Kind: sensor.ObsBLESighting,
		DeviceMAC: "aa:00:00:00:00:01", Time: f.now,
	}); err != nil {
		t.Fatal(err)
	}

	deleted, retained, err := f.bms.ForgetUser("mary")
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 || retained != 3 {
		t.Errorf("ForgetUser = (%d, %d), want (1, 3)", deleted, retained)
	}
	if got := f.bms.Store().Count(obstore.Filter{UserID: "mary", Kind: sensor.ObsWiFiConnect}); got != 3 {
		t.Errorf("override-protected wifi logs = %d, want 3", got)
	}
	if got := f.bms.Store().Count(obstore.Filter{UserID: "mary", Kind: sensor.ObsBLESighting}); got != 0 {
		t.Errorf("erasable BLE sighting survived: %d", got)
	}
}
