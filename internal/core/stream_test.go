package core

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

func collectStream(t *testing.T, s *Stream, want int, timeout time.Duration) []sensor.Observation {
	t.Helper()
	var out []sensor.Observation
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case o, ok := <-s.C:
			if !ok {
				return out
			}
			out = append(out, o)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestSubscribeEnforcesPerEvent(t *testing.T) {
	f := newFixture(t)
	// mary limits concierge to building granularity; bob is untouched.
	if err := f.bms.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
		t.Fatal(err)
	}
	stream, stats, err := f.bms.Subscribe(enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Cancel()

	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil { // mary
		t.Fatal(err)
	}
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:02", "ap-1", 1)); err != nil { // bob
		t.Fatal(err)
	}

	got := collectStream(t, stream, 2, 2*time.Second)
	if len(got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(got))
	}
	bySubject := map[string]sensor.Observation{}
	for _, o := range got {
		bySubject[o.UserID] = o
	}
	if o := bySubject["mary"]; o.SpaceID != "dbh" {
		t.Errorf("mary's event not coarsened: %+v", o)
	}
	if o := bySubject["bob"]; o.SpaceID != "dbh/1/r0" {
		t.Errorf("bob's event degraded: %+v", o)
	}
	if s := stats(); s.Delivered != 2 || s.Denied != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSubscribeDeniesOptedOutSubjects(t *testing.T) {
	f := newFixture(t)
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	stream, stats, err := f.bms.Subscribe(enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Cancel()

	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil { // mary: denied
		t.Fatal(err)
	}
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:02", "ap-1", 1)); err != nil { // bob: delivered
		t.Fatal(err)
	}
	got := collectStream(t, stream, 1, 2*time.Second)
	if len(got) != 1 || got[0].UserID != "bob" {
		t.Fatalf("delivered = %+v, want only bob", got)
	}
	// Allow the denial to be counted before asserting.
	deadline := time.After(time.Second)
	for stats().Denied == 0 {
		select {
		case <-deadline:
			t.Fatalf("stats = %+v, want a denial", stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestSubscribeFiltersKind(t *testing.T) {
	f := newFixture(t)
	stream, _, err := f.bms.Subscribe(enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsBLESighting,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Cancel()
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil {
		t.Fatal(err)
	}
	if got := collectStream(t, stream, 1, 200*time.Millisecond); len(got) != 0 {
		t.Errorf("wifi event leaked into a BLE stream: %+v", got)
	}
}

func TestSubscribeValidation(t *testing.T) {
	f := newFixture(t)
	if _, _, err := f.bms.Subscribe(enforce.Request{}, 4); err == nil {
		t.Error("kindless subscription accepted")
	}
}

func TestSubscribeCancelIdempotentAndCloses(t *testing.T) {
	f := newFixture(t)
	stream, _, err := f.bms.Subscribe(enforce.Request{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	stream.Cancel()
	if _, ok := <-stream.C; ok {
		t.Error("stream channel not closed after cancel")
	}
}
