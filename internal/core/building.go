package core

import (
	"fmt"
	"time"

	"github.com/tippers/tippers/internal/automation"
	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/semantics"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// This file implements the building-operations side of the BMS: the
// automation loop behind Policy 1, the access-control checks behind
// Policy 3, and the proximity-gated disclosure behind Policy 4.

// DeriveOccupancy runs the semantic layer over [from, to): presence
// signals in every room become per-interval occupancy observations
// (§II.B's "processes higher-level semantic information"), stored like
// any other observation so query-time enforcement — notably
// Preference 1's after-hours office rule — applies to them. Occupancy
// of a single-owner office is attributed to the owner. Returns the
// number of derived observations stored.
func (b *BMS) DeriveOccupancy(from, to time.Time, interval time.Duration) (int, error) {
	deriver := &semantics.OccupancyDeriver{
		Store:    b.store,
		Interval: interval,
		OwnerOf:  b.cfg.Users.OfficeOwner,
	}
	var rooms []string
	for _, sp := range b.cfg.Spaces.All() {
		if sp.Kind == spatial.KindRoom {
			rooms = append(rooms, sp.ID)
		}
	}
	derived, err := deriver.Derive(rooms, from, to)
	if err != nil {
		return 0, err
	}
	stored := 0
	for _, o := range derived {
		if _, err := b.store.Append(o); err != nil {
			return stored, err
		}
		stored++
		b.bus.Publish(bus.TopicObservations, o)
	}
	b.met.ingested.Add(uint64(stored))
	return stored, nil
}

// RunAutomation executes every registered automation policy once
// (the paper's Policy 1 loop: read occupancy, read temperature,
// actuate HVAC). It returns the applied actuations for audit.
func (b *BMS) RunAutomation(now time.Time) ([]automation.Actuation, error) {
	ctrl := &automation.Controller{
		Spaces:  b.cfg.Spaces,
		Sensors: b.cfg.Sensors,
		Store:   b.store,
	}
	var out []automation.Actuation
	for _, p := range b.Policies() {
		if p.Kind != policy.KindAutomation {
			continue
		}
		acts, err := ctrl.Execute(p, now)
		if err != nil {
			return out, err
		}
		out = append(out, acts...)
	}
	return out, nil
}

// AccessDecision is the outcome of a physical access check.
type AccessDecision struct {
	Allowed bool
	// PolicyID is the access-control policy that governed the space,
	// if any.
	PolicyID string
	Reason   string
}

// CheckAccess evaluates the paper's Policy 3: a user presents a
// verification method ("card" or "fingerprint") at a space. Spaces
// without an access-control policy are open. A granted or denied
// attempt is logged as a card_swipe observation (the security purpose
// Policy 3 declares), attributed to the user.
func (b *BMS) CheckAccess(userID, spaceID, method string, now time.Time) (AccessDecision, error) {
	if _, ok := b.cfg.Users.Lookup(userID); !ok {
		return AccessDecision{}, fmt.Errorf("core: unknown user %q", userID)
	}
	var governing *policy.BuildingPolicy
	for _, p := range b.Policies() {
		if p.Kind != policy.KindAccessControl {
			continue
		}
		if p.Scope.SpaceID != "" {
			in, err := b.cfg.Spaces.Contained(spaceID, p.Scope.SpaceID)
			if err != nil || !in {
				continue
			}
		}
		p := p
		governing = &p
		break
	}
	if governing == nil {
		return AccessDecision{Allowed: true, Reason: "no access policy governs this space"}, nil
	}

	mode := governing.Settings["mode"]
	allowed := false
	switch mode {
	case "card":
		allowed = method == "card"
	case "fingerprint":
		allowed = method == "fingerprint"
	case "card-or-fingerprint", "":
		allowed = method == "card" || method == "fingerprint"
	}
	d := AccessDecision{Allowed: allowed, PolicyID: governing.ID}
	if allowed {
		d.Reason = fmt.Sprintf("verified by %s (mode %s)", method, mode)
	} else {
		d.Reason = fmt.Sprintf("method %q does not satisfy mode %q", method, mode)
	}

	// Log the attempt through the capture pipeline when a reader is
	// deployed at the space; otherwise record directly.
	result := "denied"
	if allowed {
		result = "granted"
	}
	obs := sensor.Observation{
		Kind:    sensor.ObsCardSwipe,
		Time:    now,
		SpaceID: spaceID,
		UserID:  userID,
		Payload: map[string]string{"method": method, "result": result},
	}
	readers := b.cfg.Sensors.InSpace(spaceID)
	for _, r := range readers {
		if r.Type == sensor.TypeAccessControl {
			obs.SensorID = r.ID
			break
		}
	}
	if obs.SensorID != "" {
		if err := b.Ingest(obs); err != nil {
			return d, err
		}
	} else {
		obs.SensorID = "bms-access-log"
		if _, err := b.store.Append(obs); err == nil {
			b.met.ingested.Inc()
		}
	}
	return d, nil
}

// DisclosureDecision is the outcome of a proximity-gated disclosure
// check.
type DisclosureDecision struct {
	Allowed  bool
	PolicyID string
	Reason   string
	// Location is the requester's location used for the proximity
	// check, when one was found.
	Location string
}

// RequestDisclosure evaluates the paper's Policy 4: event details are
// "disclosed to registered participants only when they are nearby."
// The requester must belong to the policy's audience groups and their
// last known location (within staleness) must be contained in the
// policy's proximity space.
func (b *BMS) RequestDisclosure(policyID, userID string, now time.Time, staleness time.Duration) (DisclosureDecision, error) {
	b.mu.RLock()
	p, ok := b.policies[policyID]
	b.mu.RUnlock()
	if !ok {
		return DisclosureDecision{}, fmt.Errorf("core: unknown policy %q", policyID)
	}
	if p.Kind != policy.KindDisclosure {
		return DisclosureDecision{}, fmt.Errorf("core: policy %q is %s, not disclosure", policyID, p.Kind)
	}
	u, ok := b.cfg.Users.Lookup(userID)
	if !ok {
		return DisclosureDecision{}, fmt.Errorf("core: unknown user %q", userID)
	}
	d := DisclosureDecision{PolicyID: policyID}

	member := false
	for _, g := range p.AudienceGroups {
		if u.HasGroup(g) {
			member = true
			break
		}
	}
	if !member {
		d.Reason = fmt.Sprintf("user is not in the audience %v", p.AudienceGroups)
		return d, nil
	}

	if staleness <= 0 {
		staleness = 15 * time.Minute
	}
	loc, found := b.lastLocation(userID, now, staleness)
	if !found {
		d.Reason = "no recent location for the user; proximity unknown"
		return d, nil
	}
	d.Location = loc
	if p.ProximitySpaceID != "" {
		in, err := b.cfg.Spaces.Contained(loc, p.ProximitySpaceID)
		if err != nil || !in {
			d.Reason = fmt.Sprintf("user is at %s, outside %s", loc, p.ProximitySpaceID)
			return d, nil
		}
	}
	d.Allowed = true
	d.Reason = fmt.Sprintf("audience member within %s", p.ProximitySpaceID)
	return d, nil
}

// lastLocation returns the space of the user's most recent
// location-bearing observation within the staleness window.
func (b *BMS) lastLocation(userID string, now time.Time, staleness time.Duration) (string, bool) {
	obs := b.store.Query(obstore.Filter{
		UserID: userID,
		From:   now.Add(-staleness),
		To:     now.Add(time.Nanosecond),
	})
	for i := len(obs) - 1; i >= 0; i-- {
		o := obs[i]
		if o.SpaceID == "" {
			continue
		}
		if o.Kind == sensor.ObsWiFiConnect || o.Kind == sensor.ObsBLESighting {
			return o.SpaceID, true
		}
	}
	return "", false
}
