package core

import (
	"context"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/telemetry"
)

// This file implements decision traces: span-like records of each
// query-time enforcement decision the Request Manager makes. Where
// the audit (audit.go) answers "what *would* the building release
// about me right now?", a trace answers "what *did* it release, to
// whom, under which rules, and how long did each stage take?" —
// the enforcement-side evidence trail the paper's transparency goal
// implies. Traces are kept in a bounded ring buffer and surfaced
// through Response, the audit report, and the HTTP API.

// TraceStage is one timed phase of handling a request (decide,
// fetch, apply, aggregate).
type TraceStage struct {
	Name string `json:"name"`
	// DurationMicros is the stage latency in microseconds.
	DurationMicros int64 `json:"duration_us"`
}

// DecisionTrace is the span-like record of one enforcement decision.
type DecisionTrace struct {
	// ID is a monotonically increasing sequence number per BMS.
	ID   uint64    `json:"id"`
	Time time.Time `json:"time"`
	// TraceID joins this decision to its pipeline trace (GET
	// /v1/traces/{id}) when the request carried a span context; empty
	// otherwise.
	TraceID string `json:"trace_id,omitempty"`
	// Path is the request path: "user" or "occupancy".
	Path      string `json:"path"`
	ServiceID string `json:"service_id,omitempty"`
	SubjectID string `json:"subject_id,omitempty"`
	ObsKind   string `json:"obs_kind,omitempty"`
	Purpose   string `json:"purpose,omitempty"`
	// Engine is the enforcement engine flavor that decided
	// ("compiled", "compiled-nomemo", "naive", ...).
	Engine string `json:"engine"`
	// Strategy is the conflict-resolution strategy in force.
	Strategy string `json:"strategy"`
	Allowed  bool   `json:"allowed"`
	// DenyReason explains a denial (including post-decision denials
	// such as an unmet aggregation floor).
	DenyReason string `json:"deny_reason,omitempty"`
	// Granularity is the release precision the decision chose.
	Granularity string `json:"granularity,omitempty"`
	// CacheHit reports the decision was replayed from the memoizing
	// engine's cache.
	CacheHit bool `json:"cache_hit"`
	// MatchedPolicies names building policies that decided the flow
	// (today: the safety-critical override policy, when one fired).
	MatchedPolicies []string `json:"matched_policies,omitempty"`
	// MatchedPreferences / MatchedDefaults name the subject rules the
	// engine matched.
	MatchedPreferences []string `json:"matched_preferences,omitempty"`
	MatchedDefaults    []string `json:"matched_defaults,omitempty"`
	// Overridden names preferences a safety-critical policy beat.
	Overridden []string `json:"overridden,omitempty"`
	// SubjectsConsidered / SubjectsReleased report occupancy-path
	// coverage.
	SubjectsConsidered int `json:"subjects_considered,omitempty"`
	SubjectsReleased   int `json:"subjects_released,omitempty"`
	// ObservationsReleased counts records that left the store after
	// degradation.
	ObservationsReleased int `json:"observations_released,omitempty"`
	// Stages are the per-phase timings, in request order.
	Stages []TraceStage `json:"stages"`
	// TotalMicros is the end-to-end request latency in microseconds.
	TotalMicros int64 `json:"total_us"`
}

// addStage appends one timed phase.
func (t *DecisionTrace) addStage(name string, d time.Duration) {
	t.Stages = append(t.Stages, TraceStage{Name: name, DurationMicros: d.Microseconds()})
}

// joinSpanContext stamps the pipeline trace ID onto the decision
// trace when ctx carries a sampled one. Unsampled requests skip the
// join: their ID resolves to no retained spans, and rendering it
// would put a hex conversion on every request's hot path.
func (t *DecisionTrace) joinSpanContext(ctx context.Context) {
	if sc, ok := telemetry.SpanContextFrom(ctx); ok && sc.Sampled && sc.Valid() {
		t.TraceID = sc.TraceID.String()
	}
}

// fromDecision copies the decision's rule-matching evidence into the
// trace.
func (t *DecisionTrace) fromDecision(d enforce.Decision) {
	t.Allowed = d.Allowed
	t.DenyReason = d.DenyReason
	t.CacheHit = d.FromCache
	if d.Allowed {
		t.Granularity = d.Granularity.String()
	}
	if d.OverridePolicyID != "" {
		t.MatchedPolicies = append(t.MatchedPolicies, d.OverridePolicyID)
	}
	t.MatchedPreferences = append(t.MatchedPreferences, d.MatchedPreferences...)
	t.MatchedDefaults = append(t.MatchedDefaults, d.MatchedDefaults...)
	t.Overridden = append(t.Overridden, d.Overridden...)
}

// traceRing is a fixed-capacity ring buffer of recent traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []DecisionTrace
	next int // index of the slot the next record lands in
	full bool
	seq  uint64
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &traceRing{buf: make([]DecisionTrace, capacity)}
}

// record assigns the trace its sequence number and stores it.
func (r *traceRing) record(t *DecisionTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.ID = r.seq
	r.buf[r.next] = *t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// recent returns up to n traces, newest first. n <= 0 means all
// retained traces.
func (r *traceRing) recent(n int, match func(DecisionTrace) bool) []DecisionTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]DecisionTrace, 0, n)
	for i := 1; i <= size && len(out) < n; i++ {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		t := r.buf[idx]
		if match == nil || match(t) {
			out = append(out, t)
		}
	}
	return out
}

// newTrace starts a trace for a request.
func (b *BMS) newTrace(path string, req enforce.Request) DecisionTrace {
	return DecisionTrace{
		Time:      b.clock(),
		Path:      path,
		ServiceID: req.ServiceID,
		SubjectID: req.SubjectID,
		ObsKind:   string(req.Kind),
		Purpose:   string(req.Purpose),
		Engine:    enforce.EngineName(b.engine),
		Strategy:  b.reason.Strategy().String(),
	}
}

// finishTrace stamps the total latency, records the trace in the
// ring, and returns a stable pointer for the response.
func (b *BMS) finishTrace(t *DecisionTrace, started time.Time) *DecisionTrace {
	t.TotalMicros = time.Since(started).Microseconds()
	b.traces.record(t)
	out := *t
	return &out
}

// RecentTraces returns up to n decision traces, newest first (n <= 0
// returns all retained traces).
func (b *BMS) RecentTraces(n int) []DecisionTrace {
	return b.traces.recent(n, nil)
}

// TracesForSubject returns up to n retained traces whose subject is
// userID, newest first.
func (b *BMS) TracesForSubject(userID string, n int) []DecisionTrace {
	return b.traces.recent(n, func(t DecisionTrace) bool { return t.SubjectID == userID })
}
