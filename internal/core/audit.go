package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// This file implements the privacy audit: a per-user transparency
// report answering "which services can currently learn what about
// me, and why?" The paper's assistants exist to make data practices
// legible (§I: users should "discover technologies in their
// surroundings and the privacy ramification of interacting with these
// technologies"); the audit is the enforcement-side complement — not
// what the building *says* it does, but what its decision engine
// would actually release right now.

// AuditEntry is one (service, kind, purpose) probe outcome.
type AuditEntry struct {
	ServiceID   string                 `json:"service_id"`
	Kind        sensor.ObservationKind `json:"kind"`
	Purpose     policy.Purpose         `json:"purpose"`
	Allowed     bool                   `json:"allowed"`
	Granularity policy.Granularity     `json:"granularity,omitempty"`
	// StoredObservations is how much matching data about the subject
	// currently sits in the store (what a grant is worth today).
	StoredObservations int `json:"stored_observations"`
	// Why summarizes the deciding factor: matched preferences, an
	// override, or the default.
	Why string `json:"why"`
}

// Audit is one user's transparency report.
type Audit struct {
	UserID      string       `json:"user_id"`
	GeneratedAt time.Time    `json:"generated_at"`
	Entries     []AuditEntry `json:"entries"`
	// Preferences counts the user's installed rules.
	Preferences int `json:"preferences"`
	// OverridePolicies lists safety-critical policies that can
	// override this user's choices.
	OverridePolicies []string `json:"override_policies,omitempty"`
	// RecentTraces are the latest retained decision traces naming
	// this user as subject: the enforcement decisions that actually
	// ran (with matched rules and stage timings), complementing the
	// what-if probes above.
	RecentTraces []DecisionTrace `json:"recent_traces,omitempty"`
}

// AuditUser probes the decision engine for every registered service's
// declared (kind, purpose) pairs against the subject, at the given
// evaluation time. Probes are dry runs: they do not count toward
// request statistics and deliver no notifications.
func (b *BMS) AuditUser(userID string, now time.Time) (Audit, error) {
	u, ok := b.cfg.Users.Lookup(userID)
	if !ok {
		return Audit{}, fmt.Errorf("core: unknown user %q", userID)
	}
	if now.IsZero() {
		now = b.clock()
	}
	report := Audit{
		UserID:       userID,
		GeneratedAt:  now,
		Preferences:  len(b.Preferences(userID)),
		RecentTraces: b.TracesForSubject(userID, 20),
	}
	for _, p := range b.Policies() {
		if p.Override {
			report.OverridePolicies = append(report.OverridePolicies, p.ID)
		}
	}
	sort.Strings(report.OverridePolicies)

	for _, svc := range b.services.All() {
		seen := map[string]bool{}
		for _, decl := range svc.Declares {
			probeKey := string(decl.ObsKind) + "|" + string(decl.Purpose)
			if seen[probeKey] {
				continue
			}
			seen[probeKey] = true
			req := enforce.Request{
				ServiceID:   svc.ID,
				Purpose:     decl.Purpose,
				Kind:        decl.ObsKind,
				SubjectID:   userID,
				Granularity: decl.Granularity,
				Time:        now,
			}
			d := b.engine.Decide(req, u.Groups())
			entry := AuditEntry{
				ServiceID:          svc.ID,
				Kind:               decl.ObsKind,
				Purpose:            decl.Purpose,
				Allowed:            d.Allowed,
				StoredObservations: b.store.Count(b.filterFor(req)),
			}
			switch {
			case len(d.Overridden) > 0:
				entry.Why = fmt.Sprintf("building override beats %d preference(s)", len(d.Overridden))
			case !d.Allowed:
				entry.Why = d.DenyReason
			case len(d.MatchedPreferences) > 0:
				entry.Why = fmt.Sprintf("permitted by %d matching preference(s)", len(d.MatchedPreferences))
			default:
				entry.Why = "no preference set; building default applies"
			}
			if d.Allowed {
				entry.Granularity = d.Granularity
			}
			report.Entries = append(report.Entries, entry)
		}
	}
	sort.Slice(report.Entries, func(i, j int) bool {
		a, c := report.Entries[i], report.Entries[j]
		if a.ServiceID != c.ServiceID {
			return a.ServiceID < c.ServiceID
		}
		if a.Kind != c.Kind {
			return a.Kind < c.Kind
		}
		return a.Purpose < c.Purpose
	})
	return report, nil
}
