package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// Response is the request manager's answer to a service (Figure 1
// step 10): the decision that was applied plus whatever data it
// permitted.
type Response struct {
	Decision enforce.Decision
	// Observations are the released (possibly degraded) observations
	// for per-subject requests.
	Observations []sensor.Observation
	// Aggregates are k-anonymous per-space counts for occupancy
	// requests.
	Aggregates []privacy.AggregateCount
	// SubjectsConsidered and SubjectsReleased report coverage of
	// aggregate requests.
	SubjectsConsidered int
	SubjectsReleased   int
	// Trace is the span-like record of this request's enforcement
	// decision (matched rules, stage timings); also retained in the
	// BMS trace ring.
	Trace *DecisionTrace
}

// RequestUser is the request manager's single-subject path (Figure 1
// steps 9–10): a service asks for one user's observations. The
// decision is made against the subject's preferences and the
// building's policies; released data is degraded per the effective
// rule; override notifications are delivered to the subject's inbox.
func (b *BMS) RequestUser(req enforce.Request) (Response, error) {
	return b.RequestUserCtx(context.Background(), req)
}

// RequestUserCtx is RequestUser continuing the trace carried by ctx:
// the enforcement stages (decide, fetch, apply) become spans, and the
// decision trace is stamped with the trace ID so `iotactl trace` can
// join the two views of the same request.
func (b *BMS) RequestUserCtx(ctx context.Context, req enforce.Request) (Response, error) {
	if req.SubjectID == "" {
		return Response{}, fmt.Errorf("core: RequestUser needs a subject")
	}
	started := time.Now()
	defer b.met.requestUser.ObserveSince(started)
	ctx, span := b.tracer.StartSpan(ctx, "bms.request_user")
	defer span.End()
	span.SetAttr("subject", req.SubjectID)
	span.SetAttr("service", req.ServiceID)
	tr := b.newTrace("user", req)
	tr.joinSpanContext(ctx)

	groups := b.subjectGroups(req.SubjectID)
	_, dSpan := b.tracer.StartSpan(ctx, "enforce.decide")
	t0 := time.Now()
	d := b.engine.Decide(req, groups)
	decideDur := time.Since(t0)
	dSpan.SetAttr("allowed", strconv.FormatBool(d.Allowed))
	dSpan.End()
	b.met.decideSeconds.Observe(decideDur.Seconds())
	tr.addStage("decide", decideDur)
	b.recordDecision(d)
	tr.fromDecision(d)
	if !d.Allowed {
		return Response{Decision: d, Trace: b.finishTrace(&tr, started)}, nil
	}
	if d.Effective.MinAggregationK > 1 {
		// A single-subject release can never satisfy a k>1 aggregation
		// floor; the data path returns nothing rather than leaking an
		// individual record.
		d.DenyReason = fmt.Sprintf("subject requires aggregation over >= %d users", d.Effective.MinAggregationK)
		tr.Allowed = false
		tr.DenyReason = d.DenyReason
		return Response{Decision: d, Trace: b.finishTrace(&tr, started)}, nil
	}
	_, qSpan := b.tracer.StartSpan(ctx, "obstore.query")
	t0 = time.Now()
	obs := b.store.Query(b.filterFor(req))
	qSpan.SetAttrInt("observations", int64(len(obs)))
	qSpan.End()
	tr.addStage("fetch", time.Since(t0))
	_, aSpan := b.tracer.StartSpan(ctx, "enforce.apply")
	t0 = time.Now()
	released, err := enforce.ApplyDecision(d, obs, b.transf)
	if err != nil {
		aSpan.End()
		return Response{}, err
	}
	aSpan.SetAttrInt("released", int64(len(released)))
	aSpan.End()
	tr.addStage("apply", time.Since(t0))
	tr.ObservationsReleased = len(released)
	return Response{Decision: d, Observations: released, Trace: b.finishTrace(&tr, started)}, nil
}

// RequestOccupancy is the aggregate path: a service asks how many
// people are in each space under the request's scope. Each candidate
// subject is decided independently; only permitted subjects
// contribute; the counts are k-anonymized with k at least minK and at
// least every contributing subject's aggregation floor.
func (b *BMS) RequestOccupancy(req enforce.Request, minK int) (Response, error) {
	return b.RequestOccupancyCtx(context.Background(), req, minK)
}

// RequestOccupancyCtx is RequestOccupancy continuing the trace carried
// by ctx: the fetch, the batched per-subject decisions, and the
// k-anonymous aggregation each become spans.
func (b *BMS) RequestOccupancyCtx(ctx context.Context, req enforce.Request, minK int) (Response, error) {
	if minK < 1 {
		minK = 1
	}
	started := time.Now()
	defer b.met.requestOccup.ObserveSince(started)
	ctx, span := b.tracer.StartSpan(ctx, "bms.request_occupancy")
	defer span.End()
	span.SetAttr("service", req.ServiceID)
	tr := b.newTrace("occupancy", req)
	tr.joinSpanContext(ctx)

	// Rollup-served answers are memoized post-enforcement, pinned to
	// the (enforcement epoch, rollup version) they were computed under:
	// a preference change or a new observation invalidates the hit, so
	// a repeated dashboard poll costs a map lookup instead of a decide
	// batch. The snapshot is taken before the fetch so a concurrent
	// ingest can only cause a spurious miss, never a stale hit.
	var (
		cacheKey       string
		epoch, rollVer uint64
	)
	if b.colstore != nil {
		cacheKey = occCacheKey(req, minK, b.clock())
		epoch, rollVer = b.colstore.Epoch(), b.colstore.RollupVersion()
		if a, ok := b.occCache.get(cacheKey, epoch, rollVer); ok {
			span.SetAttr("cache", "hit")
			tr.addStage("cache", time.Since(started))
			resp := Response{
				SubjectsConsidered: a.considered,
				SubjectsReleased:   a.released,
				Aggregates:         a.aggregates,
				Decision:           occDecision(a.aggregates, a.k),
			}
			tr.Allowed = resp.Decision.Allowed
			tr.DenyReason = resp.Decision.DenyReason
			tr.SubjectsConsidered = a.considered
			tr.SubjectsReleased = a.released
			tr.ObservationsReleased = a.relObs
			resp.Trace = b.finishTrace(&tr, started)
			return resp, nil
		}
	}

	_, qSpan := b.tracer.StartSpan(ctx, "obstore.query")
	t0 := time.Now()
	obs, fromRollup := b.occupancyRows(b.filterFor(req))
	qSpan.SetAttrInt("observations", int64(len(obs)))
	qSpan.SetAttr("rollup", strconv.FormatBool(fromRollup))
	qSpan.End()
	tr.addStage("fetch", time.Since(t0))
	bySubject := make(map[string][]sensor.Observation)
	for _, o := range obs {
		if o.UserID == "" {
			continue
		}
		bySubject[o.UserID] = append(bySubject[o.UserID], o)
	}

	resp := Response{SubjectsConsidered: len(bySubject)}
	k := minK
	var releasedObs []sensor.Observation
	_, bSpan := b.tracer.StartSpan(ctx, "enforce.decide_batch")
	t0 = time.Now()
	// Post-filter decisions run as a concurrent batch: every candidate
	// subject of the query result is decided on a bounded worker pool
	// sharing the engine's decision cache, instead of one at a time.
	// Subjects are sorted so the released order (and with it the trace)
	// is deterministic rather than map-ordered.
	subjects := make([]string, 0, len(bySubject))
	for subjectID := range bySubject {
		subjects = append(subjects, subjectID)
	}
	sort.Strings(subjects)
	items := make([]enforce.BatchItem, len(subjects))
	for i, subjectID := range subjects {
		subReq := req
		subReq.SubjectID = subjectID
		items[i] = enforce.BatchItem{Req: subReq, Groups: b.subjectGroups(subjectID)}
	}
	decisions := enforce.DecideBatch(b.engine, items, enforce.BatchOptions{
		Observe: func(_ enforce.Decision, elapsed time.Duration) {
			b.met.decideSeconds.Observe(elapsed.Seconds())
		},
	})
	hasNotes := false
	for i, d := range decisions {
		b.recordDecision(d)
		if len(d.Notifications) > 0 {
			hasNotes = true
		}
		if !d.Allowed {
			continue
		}
		if d.Effective.MinAggregationK > k {
			k = d.Effective.MinAggregationK
		}
		transformed, err := enforce.ApplyDecision(d, bySubject[subjects[i]], b.transf)
		if err != nil {
			return Response{}, err
		}
		releasedObs = append(releasedObs, transformed...)
		resp.SubjectsReleased++
	}
	bSpan.SetAttrInt("subjects", int64(len(subjects)))
	bSpan.SetAttrInt("released", int64(resp.SubjectsReleased))
	bSpan.End()
	tr.addStage("decide-subjects", time.Since(t0))
	_, gSpan := b.tracer.StartSpan(ctx, "privacy.aggregate")
	t0 = time.Now()
	resp.Aggregates = privacy.KAnonymousCounts(releasedObs, k,
		func(o sensor.Observation) string { return o.SpaceID },
		func(o sensor.Observation) string { return o.UserID },
	)
	gSpan.SetAttrInt("k", int64(k))
	gSpan.SetAttrInt("spaces", int64(len(resp.Aggregates)))
	gSpan.End()
	tr.addStage("aggregate", time.Since(t0))
	resp.Decision = occDecision(resp.Aggregates, k)
	tr.Allowed = resp.Decision.Allowed
	tr.DenyReason = resp.Decision.DenyReason
	tr.SubjectsConsidered = resp.SubjectsConsidered
	tr.SubjectsReleased = resp.SubjectsReleased
	tr.ObservationsReleased = len(releasedObs)
	if fromRollup && cacheKey != "" && !hasNotes {
		// Decisions that delivered override notifications are not
		// memoized: replaying the answer would swallow the repeat
		// notification the fresh decide batch produces.
		b.occCache.put(cacheKey, occAnswer{
			epoch:      epoch,
			rollVer:    rollVer,
			aggregates: resp.Aggregates,
			k:          k,
			considered: resp.SubjectsConsidered,
			released:   resp.SubjectsReleased,
			relObs:     len(releasedObs),
		})
	}
	resp.Trace = b.finishTrace(&tr, started)
	return resp, nil
}

// occDecision synthesizes the aggregate path's response decision: the
// release is allowed iff some space cleared the k floor.
func occDecision(aggs []privacy.AggregateCount, k int) enforce.Decision {
	d := enforce.Decision{Allowed: len(aggs) > 0,
		Effective: policy.Rule{Action: policy.ActionLimit, MinAggregationK: k}}
	if !d.Allowed {
		d.DenyReason = fmt.Sprintf("no space reached the k=%d aggregation floor", k)
	}
	return d
}

// filterFor translates a request into a store filter, expanding the
// spatial scope to its subtree.
func (b *BMS) filterFor(req enforce.Request) obstore.Filter {
	f := obstore.Filter{
		UserID:   req.SubjectID,
		Kind:     req.Kind,
		From:     req.From,
		To:       req.To,
		AfterSeq: req.AfterSeq,
		Limit:    req.Limit,
	}
	if req.SpaceID != "" {
		if ids, err := b.cfg.Spaces.Subtree(req.SpaceID); err == nil {
			f.SpaceIDs = ids
		} else {
			f.SpaceIDs = []string{req.SpaceID}
		}
	}
	return f
}

func (b *BMS) subjectGroups(userID string) []profile.Group {
	u, ok := b.cfg.Users.Lookup(userID)
	if !ok {
		return nil
	}
	return u.Groups()
}

// recordDecision updates counters and delivers override
// notifications.
func (b *BMS) recordDecision(d enforce.Decision) {
	b.met.requestsDecided.Inc()
	if !d.Allowed {
		b.met.requestsDenied.Inc()
	}
	b.mu.Lock()
	for _, n := range d.Notifications {
		b.inbox[n.UserID] = append(b.inbox[n.UserID], n)
		b.met.notificationsSent.Inc()
	}
	b.mu.Unlock()
	for _, n := range d.Notifications {
		b.bus.Publish(bus.TopicNotifications, n)
	}
}
