package core

import (
	"testing"

	"github.com/tippers/tippers/internal/policy"
)

func TestAuditUser(t *testing.T) {
	f := newFixture(t)
	if err := f.bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}

	before := f.bms.Stats()
	f.bms.FetchNotifications("mary") // drain conflict notifications

	report, err := f.bms.AuditUser("mary", f.now)
	if err != nil {
		t.Fatal(err)
	}
	if report.Preferences != 2 {
		t.Errorf("preferences = %d", report.Preferences)
	}
	if len(report.OverridePolicies) != 1 || report.OverridePolicies[0] != "policy-2-emergency-location" {
		t.Errorf("override policies = %v", report.OverridePolicies)
	}
	if len(report.Entries) == 0 {
		t.Fatal("empty audit")
	}

	byKey := map[string]AuditEntry{}
	for _, e := range report.Entries {
		byKey[e.ServiceID+"|"+string(e.Kind)] = e
	}
	// Concierge wifi access: denied by the opt-out, but 3 observations
	// are stored (the grant would be worth something).
	cw := byKey["concierge|wifi_access_point"]
	if cw.Allowed || cw.StoredObservations != 3 {
		t.Errorf("concierge wifi entry = %+v", cw)
	}
	// Emergency service: allowed despite the opt-out (override).
	ew := byKey["bms-emergency|wifi_access_point"]
	if !ew.Allowed {
		t.Errorf("emergency entry = %+v", ew)
	}
	if ew.Why == "" || cw.Why == "" {
		t.Error("entries lack explanations")
	}

	// The audit is a dry run: no stats movement, no notifications.
	after := f.bms.Stats()
	if after.RequestsDecided != before.RequestsDecided {
		t.Errorf("audit counted as requests: %d -> %d", before.RequestsDecided, after.RequestsDecided)
	}
	if got := f.bms.FetchNotifications("mary"); len(got) != 0 {
		t.Errorf("audit delivered notifications: %+v", got)
	}

	// Deterministic ordering.
	again, err := f.bms.AuditUser("mary", f.now)
	if err != nil {
		t.Fatal(err)
	}
	for i := range report.Entries {
		if report.Entries[i] != again.Entries[i] {
			t.Fatalf("audit order unstable at %d", i)
		}
	}

	if _, err := f.bms.AuditUser("ghost", f.now); err == nil {
		t.Error("unknown user audited")
	}
}

func TestAuditUserDefaultAllow(t *testing.T) {
	f := newFixture(t)
	report, err := f.bms.AuditUser("bob", f.now)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range report.Entries {
		if !e.Allowed {
			t.Errorf("default-allow building denied %+v", e)
		}
		if e.Why != "no preference set; building default applies" {
			t.Errorf("why = %q", e.Why)
		}
	}
}
