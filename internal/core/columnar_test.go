package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// twinFixtures builds two identically-populated nodes, one with the
// columnar tier (the default) and one without, so tests can assert
// the tier changes nothing about what is released.
func twinFixtures(t *testing.T, ingest func(*fixture)) (withCol, rowOnly *fixture) {
	t.Helper()
	withCol = newFixture(t)
	rowOnly = newFixtureWith(t, func(c *Config) { c.DisableColumnar = true })
	ingest(withCol)
	ingest(rowOnly)
	return withCol, rowOnly
}

func occIngest(t *testing.T, f *fixture) {
	t.Helper()
	// Three users across two rooms over the preceding hour; minute -30
	// for everyone so one bucket clears k=2, plus stragglers.
	macs := map[string]string{
		"aa:00:00:00:00:01": "ap-2",
		"aa:00:00:00:00:02": "ap-2",
		"aa:00:00:00:00:03": "ap-1",
	}
	for mac, ap := range macs {
		for _, min := range []int{-45, -30, -5} {
			if err := f.bms.Ingest(f.wifiObs(mac, ap, min)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestOccupancyRollupMatchesRowScan(t *testing.T) {
	withCol, rowOnly := twinFixtures(t, func(f *fixture) { occIngest(t, f) })

	reqs := []enforce.Request{
		{ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
			Kind: sensor.ObsWiFiConnect, SpaceID: "dbh", Time: testNow},
		// Minute-aligned window: still cube-served.
		{ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
			Kind: sensor.ObsWiFiConnect, SpaceID: "dbh", Time: testNow,
			From: testNow.Add(-40 * time.Minute), To: testNow},
		// Unaligned window: the cube cannot serve it; the unified scan
		// must still agree.
		{ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
			Kind: sensor.ObsWiFiConnect, SpaceID: "dbh", Time: testNow,
			From: testNow.Add(-40*time.Minute - 30*time.Second), To: testNow},
	}
	for i, req := range reqs {
		for _, k := range []int{1, 2} {
			got, err := withCol.bms.RequestOccupancy(req, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := rowOnly.bms.RequestOccupancy(req, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Aggregates, want.Aggregates) {
				t.Errorf("req %d k=%d: aggregates diverge: %+v vs %+v", i, k, got.Aggregates, want.Aggregates)
			}
			if got.SubjectsConsidered != want.SubjectsConsidered || got.SubjectsReleased != want.SubjectsReleased {
				t.Errorf("req %d k=%d: coverage diverges: %d/%d vs %d/%d", i, k,
					got.SubjectsConsidered, got.SubjectsReleased, want.SubjectsConsidered, want.SubjectsReleased)
			}
		}
	}
}

// TestOccupancyCacheInvalidation proves a memoized occupancy answer
// can never go stale: a repeated request hits the cache, a
// mid-session preference change (epoch bump via the stream hub's
// invalidation fan-out) and a fresh ingest (rollup version bump) each
// force re-evaluation.
func TestOccupancyCacheInvalidation(t *testing.T) {
	f := newFixture(t)
	occIngest(t, f)

	req := enforce.Request{ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, SpaceID: "dbh", Time: testNow}

	first, err := f.bms.RequestOccupancy(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Aggregates) != 1 || first.Aggregates[0].Key != "dbh/2/r0" || first.Aggregates[0].Count != 2 {
		t.Fatalf("aggregates = %+v", first.Aggregates)
	}
	again, err := f.bms.RequestOccupancy(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Aggregates, first.Aggregates) {
		t.Fatalf("cached answer diverges: %+v", again.Aggregates)
	}
	f.bms.occCache.mu.Lock()
	hits := f.bms.occCache.hits
	f.bms.occCache.mu.Unlock()
	if hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Bob opts out of location sensing: the very next request must see
	// it — the preference change invalidated the enforcement epoch, so
	// the cached answer is dead.
	for _, p := range policy.Preference2NoLocation("bob") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	after, err := f.bms.RequestOccupancy(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Aggregates) != 0 {
		t.Fatalf("aggregates after opt-out = %+v (stale cache?)", after.Aggregates)
	}

	// A new observation bumps the rollup version: the next request
	// recomputes rather than replaying the pre-ingest answer.
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:03", "ap-2", -30)); err != nil {
		t.Fatal(err)
	}
	final, err := f.bms.RequestOccupancy(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Aggregates) != 1 || final.Aggregates[0].Count != 2 {
		t.Fatalf("aggregates after ingest = %+v", final.Aggregates)
	}
}

// TestQueryUsesRollups checks the ad-hoc query layer rides the same
// cubes end to end through the BMS wiring, and that disabling the
// tier changes results not at all.
func TestQueryUsesRollups(t *testing.T) {
	withCol, rowOnly := twinFixtures(t, func(f *fixture) { occIngest(t, f) })

	const sql = "SELECT space_id, COUNT(*) AS n, COUNT(DISTINCT user_id) AS u FROM observations GROUP BY space_id ORDER BY space_id"
	got, err := withCol.bms.Query(context.Background(), conciergeRequester(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Stats.UsedRollup {
		t.Error("columnar node answered from a row scan, want rollups")
	}
	want, err := rowOnly.bms.Query(context.Background(), conciergeRequester(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if want.Result.Stats.UsedRollup {
		t.Error("row-only node claims rollups")
	}
	if !reflect.DeepEqual(got.Result.Rows, want.Result.Rows) {
		t.Errorf("released rows diverge:\ncolumnar: %v\nrow-only: %v", got.Result.Rows, want.Result.Rows)
	}
}

// TestCompactionDaemon drives StartCompaction end to end: observations
// in closed buckets seal into segments in the background, and the
// unified scan keeps answering identically throughout.
func TestCompactionDaemon(t *testing.T) {
	f := newFixture(t)
	occIngest(t, f)

	f.bms.StartCompaction(time.Millisecond)
	defer f.bms.StopCompaction()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(f.bms.Columnar().Segments()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction daemon produced no segments")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The sealed history is behind the watermark now; the occupancy
	// answer is unchanged.
	req := enforce.Request{ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, SpaceID: "dbh", Time: testNow}
	resp, err := f.bms.RequestOccupancy(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Aggregates) != 1 || resp.Aggregates[0].Key != "dbh/2/r0" || resp.Aggregates[0].Count != 2 {
		t.Fatalf("aggregates after compaction = %+v", resp.Aggregates)
	}
}
