package core

import (
	"context"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/query"
	"github.com/tippers/tippers/internal/sensor"
)

// QueryResponse is an executed analytical query plus its decision
// trace.
type QueryResponse struct {
	Result *query.Result
	// Trace is the span-like record of the query's enforcement run
	// (parse/plan/execute stage timings, released-row counts); also
	// retained in the BMS trace ring.
	Trace *DecisionTrace
}

// Query parses, plans, and executes one SQL statement as requester
// (Figure 1 steps 9–10, generalized to ad-hoc reads): the planner
// pushes sargable predicates into the sharded store's filter and
// binds the scan to a per-row enforcement predicate, so policies and
// preferences gate every row exactly as they gate the fixed request
// paths. Parse and plan failures return typed errors
// (*query.ParseError, *query.PlanError, *query.EnforceError).
func (b *BMS) Query(ctx context.Context, requester query.Requester, sql string) (QueryResponse, error) {
	started := time.Now()
	defer b.met.requestQuery.ObserveSince(started)
	ctx, span := b.tracer.StartSpan(ctx, "bms.query")
	defer span.End()
	span.SetAttr("service", requester.ServiceID)

	tr := b.newTrace("query", enforce.Request{
		ServiceID:   requester.ServiceID,
		Purpose:     requester.Purpose,
		Granularity: requester.Granularity,
	})
	tr.joinSpanContext(ctx)

	t0 := time.Now()
	stmt, err := query.Parse(sql)
	if err != nil {
		return QueryResponse{}, err
	}
	tr.addStage("parse", time.Since(t0))

	t0 = time.Now()
	plan, err := query.Compile(stmt, b.queryEnv(ctx), requester)
	if err != nil {
		if ee, ok := err.(*query.EnforceError); ok {
			// A query the enforcement layer rejects outright is itself
			// an auditable decision.
			tr.Allowed = false
			tr.DenyReason = ee.Msg
			b.finishTrace(&tr, started)
		}
		return QueryResponse{}, err
	}
	tr.addStage("plan", time.Since(t0))
	span.SetAttr("table", stmt.Table)

	t0 = time.Now()
	res, err := plan.Execute()
	if err != nil {
		return QueryResponse{}, err
	}
	tr.addStage("execute", time.Since(t0))
	tr.Allowed = true
	tr.SubjectsConsidered = res.Stats.Subjects
	tr.ObservationsReleased = res.Stats.ReleasedRows
	span.SetAttrInt("scanned", int64(res.Stats.ScannedRows))
	span.SetAttrInt("released", int64(res.Stats.ReleasedRows))
	return QueryResponse{Result: res, Trace: b.finishTrace(&tr, started)}, nil
}

// queryEnv wires the query planner/executor to this BMS: the sharded
// store scan, the spatial subtree expansion, the enforcement engine
// (with notification delivery and metrics, exactly like the fixed
// request paths), the per-row data path, and the audit view over
// retained decision traces.
func (b *BMS) queryEnv(ctx context.Context) query.Env {
	return query.Env{
		Scan: func(f obstore.Filter) []sensor.Observation {
			// The columnar tier serves the unified view — zone-map-pruned
			// segments behind the watermark, row shards ahead of it; the
			// plain store answers when the tier is disabled.
			if b.colstore != nil {
				_, qSpan := b.tracer.StartSpan(ctx, "colstore.query")
				obs := b.colstore.Query(f)
				qSpan.SetAttrInt("observations", int64(len(obs)))
				qSpan.End()
				return obs
			}
			_, qSpan := b.tracer.StartSpan(ctx, "obstore.query")
			obs := b.store.Query(f)
			qSpan.SetAttrInt("observations", int64(len(obs)))
			qSpan.End()
			return obs
		},
		Subtree: func(spaceID string) []string {
			if ids, err := b.cfg.Spaces.Subtree(spaceID); err == nil {
				return ids
			}
			return []string{spaceID}
		},
		Decide: func(req enforce.Request) enforce.Decision {
			t0 := time.Now()
			d := b.engine.Decide(req, b.subjectGroups(req.SubjectID))
			b.met.decideSeconds.Observe(time.Since(t0).Seconds())
			b.recordDecision(d)
			return d
		},
		Apply: func(d enforce.Decision, o sensor.Observation) (sensor.Observation, bool, error) {
			return enforce.ApplyDecisionOne(d, o, b.transf)
		},
		AuditRecords: b.auditRecords,
		Now:          b.clock,
		Rollup:       b.queryRollup(),
	}
}

// auditRecords projects the retained decision traces naming subjectID
// into audit-table rows — the query-layer view of "what did the
// building decide about me?".
func (b *BMS) auditRecords(subjectID string) []query.AuditRecord {
	traces := b.TracesForSubject(subjectID, 0)
	out := make([]query.AuditRecord, 0, len(traces))
	for _, t := range traces {
		out = append(out, query.AuditRecord{
			ID:          t.ID,
			Time:        t.Time,
			Path:        t.Path,
			ServiceID:   t.ServiceID,
			SubjectID:   t.SubjectID,
			Kind:        t.ObsKind,
			Purpose:     t.Purpose,
			Allowed:     t.Allowed,
			DenyReason:  t.DenyReason,
			Granularity: t.Granularity,
			CacheHit:    t.CacheHit,
		})
	}
	return out
}
