package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
)

var testNow = time.Date(2017, time.June, 7, 14, 0, 0, 0, time.UTC) // Wednesday 2pm

type fixture struct {
	bms *BMS
	now time.Time
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	return newFixtureWith(t, func(*Config) {})
}

// newFixtureWith builds the standard test BMS after letting the caller
// adjust its Config (e.g. swap in a durable store).
func newFixtureWith(t testing.TB, adjust func(*Config)) *fixture {
	t.Helper()
	spaces := spatial.NewModel()
	spaces.MustAdd("", spatial.Space{ID: "dbh", Name: "Donald Bren Hall", Kind: spatial.KindBuilding})
	for f := 1; f <= 2; f++ {
		fid := fmt.Sprintf("dbh/%d", f)
		spaces.MustAdd("dbh", spatial.Space{ID: fid, Kind: spatial.KindFloor, Floor: f})
		for r := 0; r < 3; r++ {
			spaces.MustAdd(fid, spatial.Space{ID: fmt.Sprintf("%s/r%d", fid, r), Kind: spatial.KindRoom, Floor: f})
		}
	}

	users := profile.NewDirectory()
	users.MustAdd(profile.User{
		ID: "mary", Name: "Mary",
		Profiles:   []profile.Profile{{Group: profile.GroupGradStudent, OfficeID: "dbh/2/r0"}},
		DeviceMACs: []string{"aa:00:00:00:00:01"},
	})
	users.MustAdd(profile.User{
		ID: "bob", Name: "Bob",
		Profiles:   []profile.Profile{{Group: profile.GroupFaculty, OfficeID: "dbh/2/r1"}},
		DeviceMACs: []string{"aa:00:00:00:00:02"},
	})
	users.MustAdd(profile.User{
		ID: "carol", Name: "Carol",
		Profiles:   []profile.Profile{{Group: profile.GroupUndergrad}},
		DeviceMACs: []string{"aa:00:00:00:00:03"},
	})

	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("ap-1", sensor.TypeWiFiAP, "dbh/1/r0"))
	sensors.MustAdd(sensor.MustNew("ap-2", sensor.TypeWiFiAP, "dbh/2/r0"))
	sensors.MustAdd(sensor.MustNew("ble-1", sensor.TypeBLEBeacon, "dbh/2/r0"))
	sensors.MustAdd(sensor.MustNew("door-1", sensor.TypeAccessControl, "dbh/1/r1"))
	sensors.MustAdd(sensor.MustNew("hvac-1", sensor.TypeHVAC, "dbh/2/r0"))

	services := service.NewRegistry()
	services.MustRegister(service.Concierge())
	services.MustRegister(service.SmartMeeting())
	services.MustRegister(service.Service{
		ID: "bms-emergency", Name: "BMS Emergency Response",
		Developer: service.DeveloperBuilding,
		Declares: []service.DataRequest{{
			ObsKind: sensor.ObsWiFiConnect, Purpose: policy.PurposeEmergencyResponse,
			Granularity: policy.GranExact,
		}},
	})

	cfg := Config{
		Spaces:       spaces,
		Users:        users,
		Sensors:      sensors,
		Services:     services,
		DefaultAllow: true,
		Clock:        func() time.Time { return testNow },
	}
	adjust(&cfg)
	bms, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bms.Close)
	return &fixture{bms: bms, now: testNow}
}

func (f *fixture) wifiObs(mac, apID string, minute int) sensor.Observation {
	return sensor.Observation{
		SensorID:  apID,
		Kind:      sensor.ObsWiFiConnect,
		DeviceMAC: mac,
		Time:      f.now.Add(time.Duration(minute) * time.Minute),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted empty config")
	}
}

func TestIngestAttributionAndStamping(t *testing.T) {
	f := newFixture(t)
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil {
		t.Fatal(err)
	}
	got := f.bms.Store().Query(obstore.Filter{UserID: "mary"})
	if len(got) != 1 {
		t.Fatalf("observations = %d", len(got))
	}
	if got[0].SpaceID != "dbh/2/r0" {
		t.Errorf("SpaceID = %q, want sensor location", got[0].SpaceID)
	}
	if err := f.bms.Ingest(sensor.Observation{SensorID: "ghost"}); err == nil {
		t.Error("unregistered sensor accepted")
	}
	// Unknown MAC: stored but unattributed.
	if err := f.bms.Ingest(f.wifiObs("ff:ff:ff:ff:ff:ff", "ap-1", 1)); err != nil {
		t.Fatal(err)
	}
	if n := f.bms.Store().Count(obstore.Filter{DeviceMAC: "ff:ff:ff:ff:ff:ff"}); n != 1 {
		t.Errorf("unattributed obs = %d", n)
	}
	if f.bms.Stats().Ingested != 2 {
		t.Errorf("Stats.Ingested = %d", f.bms.Stats().Ingested)
	}
}

func TestIngestCaptureTimeEnforcement(t *testing.T) {
	f := newFixture(t)
	// Disable ap-1 entirely.
	if err := f.bms.Sensors().Actuate("ap-1", map[string]string{"enabled": "false"}); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-1", 0)); err != nil {
		t.Fatal(err)
	}
	// Turn off connection logging on ap-2 (Figure 4 opt-out).
	if err := f.bms.Sensors().Actuate("ap-2", map[string]string{"log_connections": "false"}); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 1)); err != nil {
		t.Fatal(err)
	}
	if n := f.bms.Store().Len(); n != 0 {
		t.Errorf("store has %d observations, want 0", n)
	}
	st := f.bms.Stats()
	if st.DroppedDisabled != 1 || st.DroppedUnlogged != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestIngestPseudonymization(t *testing.T) {
	f := newFixture(t)
	if err := f.bms.Sensors().Actuate("ap-2", map[string]string{"hash_mac": "true"}); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil {
		t.Fatal(err)
	}
	all := f.bms.Store().Query(obstore.Filter{})
	if len(all) != 1 {
		t.Fatal("observation lost")
	}
	if all[0].UserID != "" || all[0].DeviceMAC == "aa:00:00:00:00:01" {
		t.Errorf("pseudonymization failed: %+v", all[0])
	}
	if f.bms.Stats().Pseudonymized != 1 {
		t.Errorf("Stats.Pseudonymized = %d", f.bms.Stats().Pseudonymized)
	}
}

func TestRegisterPolicyActuatesAndRetains(t *testing.T) {
	f := newFixture(t)
	// Policy 3: access control readers switch to card-or-fingerprint.
	p3 := policy.Policy3MeetingRoomAccess("dbh/1/r1")[0]
	if err := f.bms.RegisterPolicy(p3); err != nil {
		t.Fatal(err)
	}
	door, _ := f.bms.Sensors().Get("door-1")
	if v, _ := door.Setting("mode"); v != "card-or-fingerprint" {
		t.Errorf("door mode = %q", v)
	}
	// Policy 2 installs a six-month retention rule for wifi logs.
	if err := f.bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	rules := f.bms.Store().RetentionRules()
	found := false
	for _, r := range rules {
		if r.Kind == sensor.ObsWiFiConnect && r.TTL == isodur.SixMonths {
			found = true
		}
	}
	if !found {
		t.Errorf("retention rules = %+v", rules)
	}
	// Duplicate and invalid policies rejected.
	if err := f.bms.RegisterPolicy(p3); err == nil {
		t.Error("duplicate policy accepted")
	}
	if err := f.bms.RegisterPolicy(policy.BuildingPolicy{ID: "x"}); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestRegisterPolicyScopedActuation(t *testing.T) {
	f := newFixture(t)
	// A policy scoped to floor 1 must not touch floor 2 APs.
	bp := policy.BuildingPolicy{
		ID: "floor1-hash", Name: "Hash MACs on floor 1", Kind: policy.KindCollection,
		Scope:    policy.Scope{SpaceID: "dbh/1", SensorType: sensor.TypeWiFiAP},
		Settings: map[string]string{"hash_mac": "true"},
	}
	if err := f.bms.RegisterPolicy(bp); err != nil {
		t.Fatal(err)
	}
	ap1, _ := f.bms.Sensors().Get("ap-1")
	ap2, _ := f.bms.Sensors().Get("ap-2")
	if !ap1.BoolSetting("hash_mac") {
		t.Error("floor-1 AP not actuated")
	}
	if ap2.BoolSetting("hash_mac") {
		t.Error("floor-2 AP wrongly actuated")
	}
}

func TestSetPreferenceAndConflictNotification(t *testing.T) {
	f := newFixture(t)
	if err := f.bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.SetPreference(policy.Preference{ID: "x", UserID: "ghost", Rule: policy.Rule{Action: policy.ActionDeny}}); err == nil {
		t.Error("preference for unknown user accepted")
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	conflicts := f.bms.Conflicts()
	if len(conflicts) == 0 {
		t.Fatal("no conflicts detected")
	}
	notifs := f.bms.FetchNotifications("mary")
	if len(notifs) == 0 {
		t.Fatal("mary was not notified of the override")
	}
	if notifs[0].PolicyID != "policy-2-emergency-location" {
		t.Errorf("notification = %+v", notifs[0])
	}
	// Inbox drained.
	if got := f.bms.FetchNotifications("mary"); len(got) != 0 {
		t.Errorf("inbox not drained: %+v", got)
	}
	// Re-running detection must not duplicate notifications.
	if err := f.bms.SetPreference(policy.Preference1OfficeOccupancy("bob", "dbh/2/r1")); err != nil {
		t.Fatal(err)
	}
	if got := f.bms.FetchNotifications("mary"); len(got) != 0 {
		t.Errorf("stale conflict re-notified: %+v", got)
	}
	if got := f.bms.Preferences("mary"); len(got) != 2 {
		t.Errorf("Preferences(mary) = %d", len(got))
	}
	if !f.bms.RemovePreference("pref-1-office-occupancy-bob") {
		t.Error("RemovePreference failed")
	}
	if f.bms.RemovePreference("pref-1-office-occupancy-bob") {
		t.Error("double remove succeeded")
	}
}

func TestRequestUserFlow(t *testing.T) {
	f := newFixture(t)
	// Ingest some observations for mary and bob.
	for i := 0; i < 3; i++ {
		if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:02", "ap-1", 0)); err != nil {
		t.Fatal(err)
	}

	req := enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		SubjectID: "mary",
		Time:      f.now,
	}
	resp, err := f.bms.RequestUser(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Allowed || len(resp.Observations) != 3 {
		t.Fatalf("default-allow response = %+v", resp.Decision)
	}
	if resp.Observations[0].SpaceID != "dbh/2/r0" {
		t.Errorf("exact location = %q", resp.Observations[0].SpaceID)
	}

	// Coarse preference: locations degrade to the building.
	if err := f.bms.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
		t.Fatal(err)
	}
	resp, err = f.bms.RequestUser(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Observations) != 3 || resp.Observations[0].SpaceID != "dbh" {
		t.Errorf("coarse response = %+v", resp.Observations)
	}

	// Full opt-out: nothing released.
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = f.bms.RequestUser(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decision.Allowed || len(resp.Observations) != 0 {
		t.Errorf("opt-out leaked: %+v", resp.Decision)
	}

	// Emergency override: released with notification.
	if err := f.bms.RegisterPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	f.bms.FetchNotifications("mary") // drain conflict notification
	ereq := req
	ereq.ServiceID = "bms-emergency"
	ereq.Purpose = policy.PurposeEmergencyResponse
	resp, err = f.bms.RequestUser(ereq)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decision.Allowed || len(resp.Observations) != 3 {
		t.Fatalf("emergency response = %+v", resp.Decision)
	}
	if notifs := f.bms.FetchNotifications("mary"); len(notifs) == 0 {
		t.Error("override without notification")
	}

	if _, err := f.bms.RequestUser(enforce.Request{}); err == nil {
		t.Error("subject-less request accepted")
	}
}

func TestRequestUserAggregationFloorBlocksIndividual(t *testing.T) {
	f := newFixture(t)
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.SetPreference(policy.Preference{
		ID: "agg-only", UserID: "mary",
		Scope: policy.Scope{ObsKind: sensor.ObsWiFiConnect},
		Rule:  policy.Rule{Action: policy.ActionLimit, MinAggregationK: 3},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := f.bms.RequestUser(enforce.Request{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, SubjectID: "mary", Time: f.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Observations) != 0 {
		t.Errorf("individual release under aggregation floor: %+v", resp.Observations)
	}
}

func TestRequestOccupancy(t *testing.T) {
	f := newFixture(t)
	// mary and bob on floor 2 (ap-2 room), carol on floor 1.
	macs := map[string]string{
		"aa:00:00:00:00:01": "ap-2",
		"aa:00:00:00:00:02": "ap-2",
		"aa:00:00:00:00:03": "ap-1",
	}
	for mac, ap := range macs {
		if err := f.bms.Ingest(f.wifiObs(mac, ap, 0)); err != nil {
			t.Fatal(err)
		}
	}
	req := enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
		SpaceID:   "dbh",
		Time:      f.now,
	}
	resp, err := f.bms.RequestOccupancy(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SubjectsConsidered != 3 || resp.SubjectsReleased != 3 {
		t.Errorf("coverage = %d/%d", resp.SubjectsReleased, resp.SubjectsConsidered)
	}
	// Only dbh/2/r0 has >= 2 subjects.
	if len(resp.Aggregates) != 1 || resp.Aggregates[0].Key != "dbh/2/r0" || resp.Aggregates[0].Count != 2 {
		t.Errorf("aggregates = %+v", resp.Aggregates)
	}

	// bob opts out: the floor-2 room drops below k and disappears.
	for _, p := range policy.Preference2NoLocation("bob") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = f.bms.RequestOccupancy(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SubjectsReleased != 2 {
		t.Errorf("released = %d, want 2", resp.SubjectsReleased)
	}
	if len(resp.Aggregates) != 0 || resp.Decision.Allowed {
		t.Errorf("suppression failed: %+v", resp.Aggregates)
	}
}

func TestRetentionDaemon(t *testing.T) {
	f := newFixture(t)
	f.bms.Store().SetDefaultRetention(isodur.MustParse("PT1M"))
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", -10)); err != nil {
		t.Fatal(err)
	}
	f.bms.StartRetention(5 * time.Millisecond)
	f.bms.StartRetention(5 * time.Millisecond) // idempotent
	deadline := time.After(2 * time.Second)
	for f.bms.Store().Len() > 0 {
		select {
		case <-deadline:
			t.Fatal("retention daemon never swept")
		case <-time.After(5 * time.Millisecond):
		}
	}
	f.bms.StopRetention()
	f.bms.StopRetention() // idempotent
}

func TestStatsCounters(t *testing.T) {
	f := newFixture(t)
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil {
		t.Fatal(err)
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := f.bms.SetPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	req := enforce.Request{
		ServiceID: "concierge", Purpose: policy.PurposeProvidingService,
		Kind: sensor.ObsWiFiConnect, SubjectID: "mary", Time: f.now,
	}
	if _, err := f.bms.RequestUser(req); err != nil {
		t.Fatal(err)
	}
	st := f.bms.Stats()
	if st.RequestsDecided != 1 || st.RequestsDenied != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestConfigDurableStore(t *testing.T) {
	dir := t.TempDir()
	open := func() *obstore.Store {
		s, err := obstore.OpenDurable(obstore.DurableConfig{Dir: dir, SyncInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	f := newFixtureWith(t, func(cfg *Config) { cfg.Store = open() })
	if err := f.bms.Ingest(f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.bms.Store().WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	f.bms.Close() // flushes and closes the WAL; the t.Cleanup close is a no-op

	// A "restarted" BMS over the same directory sees the attributed,
	// stamped observation without re-ingesting anything.
	f2 := newFixtureWith(t, func(cfg *Config) { cfg.Store = open() })
	got := f2.bms.Store().Query(obstore.Filter{UserID: "mary"})
	if len(got) != 1 {
		t.Fatalf("recovered %d observations for mary, want 1", len(got))
	}
	if got[0].SpaceID != "dbh/2/r0" {
		t.Errorf("recovered SpaceID = %q, want the sensor's space", got[0].SpaceID)
	}
	// And the pipeline keeps working on top of the recovered state.
	if err := f2.bms.Ingest(f2.wifiObs("aa:00:00:00:00:02", "ap-1", 1)); err != nil {
		t.Fatal(err)
	}
	if n := f2.bms.Store().Len(); n != 2 {
		t.Errorf("store has %d observations after recovery + ingest, want 2", n)
	}
}
