package core

import (
	"fmt"

	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/sensor"
)

// This file implements enforced streaming: a service subscribing to
// live observations. The raw observation bus is internal — handing it
// to services would bypass every preference — so subscriptions go
// through the same decision pipeline as queries: each event is
// decided for its subject and transformed per the effective rule
// before delivery.

// Stream is one service's enforced live subscription.
type Stream struct {
	// C delivers released (possibly degraded) observations.
	C <-chan sensor.Observation
	// Cancel detaches the stream. Safe to call multiple times; C is
	// closed afterwards.
	Cancel func()
}

// StreamStats counts a stream's enforcement outcomes.
type StreamStats struct {
	Delivered uint64
	Denied    uint64
	Dropped   uint64 // subscriber too slow
}

// Subscribe attaches an enforced live stream for a service: every
// observation of the requested kind is decided against the subject's
// preferences (and the building's overrides) at event time, exactly
// like a query, then degraded and delivered. Unattributed
// observations are decided with an empty subject, so default-deny
// deployments suppress them too.
//
// The req template supplies ServiceID, Purpose, Kind, and optionally
// SpaceID/Granularity; Subject and Time are taken from each event.
func (b *BMS) Subscribe(req enforce.Request, buffer int) (*Stream, func() StreamStats, error) {
	if req.Kind == "" {
		return nil, nil, fmt.Errorf("core: streaming subscription needs a kind")
	}
	if buffer < 1 {
		buffer = 64
	}
	sub := b.bus.Subscribe(bus.TopicObservations)
	out := make(chan sensor.Observation, buffer)
	stats := make(chan StreamStats, 1)
	stats <- StreamStats{}

	bump := func(f func(*StreamStats)) {
		s := <-stats
		f(&s)
		stats <- s
	}

	done := make(chan struct{})
	go func() {
		defer close(out)
		defer close(done)
		for e := range sub.C {
			o, ok := e.Payload.(sensor.Observation)
			if !ok || o.Kind != req.Kind {
				continue
			}
			evReq := req
			evReq.SubjectID = o.UserID
			evReq.Time = o.Time
			if evReq.SpaceID == "" {
				evReq.SpaceID = o.SpaceID
			}
			d := b.engine.Decide(evReq, b.subjectGroups(o.UserID))
			b.recordDecision(d)
			if !d.Allowed {
				bump(func(s *StreamStats) { s.Denied++ })
				continue
			}
			released, err := enforce.ApplyDecision(d, []sensor.Observation{o}, b.transf)
			if err != nil || len(released) == 0 {
				bump(func(s *StreamStats) { s.Denied++ })
				continue
			}
			select {
			case out <- released[0]:
				bump(func(s *StreamStats) { s.Delivered++ })
			default:
				bump(func(s *StreamStats) { s.Dropped++ })
			}
		}
	}()

	stream := &Stream{
		C: out,
		Cancel: func() {
			sub.Cancel()
			<-done
		},
	}
	statsFn := func() StreamStats {
		s := <-stats
		stats <- s
		return s
	}
	return stream, statsFn, nil
}
