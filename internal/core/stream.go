package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/stream"
)

// This file keeps the original channel-based streaming API as a thin
// adapter over the stream hub (internal/stream). The raw observation
// bus is internal — handing it to services would bypass every
// preference — so subscriptions go through the same decision pipeline
// as queries: each event is decided for its subject and transformed
// per the effective rule before delivery. The hub adds what the old
// inline implementation lacked: decision memoization across
// subscribers, selectable backpressure, and cursor-based resume
// (reachable via BMS.Streams for callers that want events rather than
// a channel).

// Stream is one service's enforced live subscription.
type Stream struct {
	// C delivers released (possibly degraded) observations.
	C <-chan sensor.Observation
	// Cancel detaches the stream. Safe to call multiple times; C is
	// closed afterwards.
	Cancel func()
}

// StreamStats counts a stream's enforcement outcomes.
type StreamStats struct {
	Delivered uint64
	Denied    uint64
	Dropped   uint64 // subscriber too slow
}

// Subscribe attaches an enforced live stream for a service: every
// observation of the requested kind is decided against the subject's
// preferences (and the building's overrides) at event time, exactly
// like a query, then degraded and delivered. Unattributed
// observations are decided with an empty subject, so default-deny
// deployments suppress them too.
//
// The req template supplies ServiceID, Purpose, Kind, and optionally
// SpaceID/Granularity; Subject and Time are taken from each event.
func (b *BMS) Subscribe(req enforce.Request, buffer int) (*Stream, func() StreamStats, error) {
	if req.Kind == "" {
		return nil, nil, fmt.Errorf("core: streaming subscription needs a kind")
	}
	if buffer < 1 {
		buffer = 64
	}
	sub, err := b.streams.Subscribe(stream.Options{
		Topic:   stream.TopicObservations,
		Request: req,
		Buffer:  buffer,
		Policy:  stream.DropOldest,
	})
	if err != nil {
		return nil, nil, err
	}

	out := make(chan sensor.Observation, buffer)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(out)
		defer close(done)
		for {
			ev, err := sub.Next(context.Background())
			if err != nil {
				return
			}
			if ev.Type != stream.EventObservation {
				continue
			}
			select {
			case out <- *ev.Observation:
			case <-stop:
				return
			}
		}
	}()

	var once sync.Once
	st := &Stream{
		C: out,
		Cancel: func() {
			once.Do(func() {
				sub.Cancel()
				close(stop)
			})
			<-done
		},
	}
	statsFn := func() StreamStats {
		s := sub.Stats()
		return StreamStats{Delivered: s.Delivered, Denied: s.Denied, Dropped: s.Dropped}
	}
	return st, statsFn, nil
}
