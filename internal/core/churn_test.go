package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// TestEngineRecompileUnderChurn hammers the compiled engine through
// the BMS mutation path while deciders, a batch decider, and a live
// stream subscriber run concurrently. Each mutator owns one user and
// repeatedly replaces that user's single preference, encoding a
// monotonically increasing version in Rule.NoiseEpsilon; it publishes
// the version only after SetPreference returns. Deciders read the
// published version *before* deciding, so any decision carrying an
// older epsilon proves a stale compiled index or memo entry was
// served after the mutation committed. Run under -race this also
// shakes out unsynchronized access in the recompile path itself.
func TestEngineRecompileUnderChurn(t *testing.T) {
	const (
		mutators     = 4
		deciders     = 4
		versions     = 150 // minimum preference replacements per mutator
		observations = 300 // events pushed through the live stream
	)

	churnUser := func(i int) string { return fmt.Sprintf("churn-%d", i) }
	churnPref := func(i int) string { return fmt.Sprintf("churn-pref-%d", i) }

	f := newFixtureWith(t, func(cfg *Config) {
		for i := 0; i < mutators; i++ {
			cfg.Users.MustAdd(profile.User{
				ID: churnUser(i), Name: fmt.Sprintf("Churn %d", i),
				Profiles:   []profile.Profile{{Group: profile.GroupGradStudent}},
				DeviceMACs: []string{fmt.Sprintf("cc:00:00:00:00:%02x", i+1)},
			})
		}
	})

	setVersion := func(i, v int) {
		t.Helper()
		err := f.bms.SetPreference(policy.Preference{
			ID:     churnPref(i),
			UserID: churnUser(i),
			Name:   "churn",
			Scope:  policy.Scope{ServiceID: "concierge"},
			Rule: policy.Rule{
				Action:         policy.ActionLimit,
				MaxGranularity: policy.GranBuilding,
				NoiseEpsilon:   float64(v),
			},
			Source: "explicit",
		})
		if err != nil {
			t.Errorf("SetPreference v%d for %s: %v", v, churnUser(i), err)
		}
	}

	// committed[i] holds the highest version whose SetPreference has
	// returned for churn-i. Seed version 1 so every decide matches.
	var committed [mutators]atomic.Int64
	for i := 0; i < mutators; i++ {
		setVersion(i, 1)
		committed[i].Store(1)
	}

	churnReq := func(i int) enforce.Request {
		return enforce.Request{
			ServiceID:   "concierge",
			SubjectID:   churnUser(i),
			Kind:        sensor.ObsWiFiConnect,
			Purpose:     policy.PurposeProvidingService,
			Granularity: policy.GranExact,
			Time:        f.now, // fixed time keeps memo keys stable across calls
		}
	}

	checkDecision := func(who string, i int, floor int64, d enforce.Decision) {
		t.Helper()
		if !d.Allowed {
			t.Errorf("%s: churn-%d denied: %s", who, i, d.DenyReason)
			return
		}
		if d.Effective.Action != policy.ActionLimit {
			t.Errorf("%s: churn-%d action = %v, want limit", who, i, d.Effective.Action)
			return
		}
		// Versions only grow, so a decision older than the version
		// committed before the call is a stale index/memo read.
		if got := int64(d.Effective.NoiseEpsilon); got < floor {
			t.Errorf("%s: churn-%d served stale decision: epsilon %d < committed %d",
				who, i, got, floor)
		}
	}

	var wg sync.WaitGroup
	churning := make(chan struct{})   // closed when every mutator is done
	ingestDone := make(chan struct{}) // closed when the ingester has pushed all events

	// Mutators: replace the owned preference through the BMS so the
	// full invalidation fan-out (engine recompile + memo invalidate +
	// stream epoch bump) runs each iteration. Each mutator runs at
	// least `versions` replacements and then keeps churning until the
	// stream ingester finishes, so live events are always delivered
	// against an engine that is actively recompiling.
	var mutDone sync.WaitGroup
	for i := 0; i < mutators; i++ {
		wg.Add(1)
		mutDone.Add(1)
		go func(i int) {
			defer wg.Done()
			defer mutDone.Done()
			for v := 2; ; v++ {
				setVersion(i, v)
				committed[i].Store(int64(v))
				if v >= versions {
					select {
					case <-ingestDone:
						return
					default:
					}
				}
			}
		}(i)
	}
	go func() {
		mutDone.Wait()
		close(churning)
	}()

	engine := f.bms.Engine()

	// Deciders: single Decide through the full request path plus raw
	// engine calls, checking the staleness invariant on every answer.
	for d := 0; d < deciders; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			i := d % mutators
			for n := 0; ; n++ {
				select {
				case <-churning:
					return
				default:
				}
				floor := committed[i].Load()
				if n%3 == 0 {
					resp, err := f.bms.RequestUser(churnReq(i))
					if err != nil {
						t.Errorf("RequestUser: %v", err)
						return
					}
					checkDecision("request-user", i, floor, resp.Decision)
				} else {
					checkDecision("decide", i, floor, engine.Decide(churnReq(i), []profile.Group{profile.GroupGradStudent}))
				}
			}
		}(d)
	}

	// Batch decider: DecideBatch across every churn subject at once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		items := make([]enforce.BatchItem, mutators)
		for {
			select {
			case <-churning:
				return
			default:
			}
			floors := make([]int64, mutators)
			for i := range items {
				floors[i] = committed[i].Load()
				items[i] = enforce.BatchItem{Req: churnReq(i), Groups: []profile.Group{profile.GroupGradStudent}}
			}
			for i, d := range enforce.DecideBatch(engine, items, enforce.BatchOptions{}) {
				checkDecision("batch", i, floors[i], d)
			}
		}
	}()

	// Stream subscriber + ingester: live events are decided against
	// the engine while it recompiles; the subscriber just has to keep
	// draining without deadlock or race.
	stream, _, err := f.bms.Subscribe(enforce.Request{
		ServiceID: "concierge",
		Purpose:   policy.PurposeProvidingService,
		Kind:      sensor.ObsWiFiConnect,
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var drained atomic.Int64
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for range stream.C {
			drained.Add(1)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ingestDone)
		for n := 0; n < observations; n++ {
			mac := fmt.Sprintf("cc:00:00:00:00:%02x", n%mutators+1)
			if err := f.bms.Ingest(f.wifiObs(mac, "ap-1", n%60)); err != nil {
				t.Errorf("Ingest: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	// Ingest enqueues into the subscription ring; delivery to C is the
	// hub pump's job and may lag the last Ingest return. Give it time
	// to surface at least one event before tearing the stream down.
	deadline := time.Now().Add(10 * time.Second)
	for drained.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stream.Cancel()
	<-drainDone
	if drained.Load() == 0 {
		t.Error("stream subscriber saw no events during churn")
	}

	// After the dust settles every subject must decide at the final
	// version, and the memo must serve it consistently.
	for i := 0; i < mutators; i++ {
		final := committed[i].Load()
		for rep := 0; rep < 2; rep++ {
			checkDecision("final", i, final, engine.Decide(churnReq(i), []profile.Group{profile.GroupGradStudent}))
		}
	}
}
