package core

import (
	"github.com/tippers/tippers/internal/telemetry"
)

// coreMetrics is the pipeline's instrument panel: every counter the
// old mutex-guarded Stats struct held now lives on lock-free
// telemetry primitives, registered (with help text) on the
// deployment's registry so /metrics exposes them. Stats() keeps its
// exact struct and semantics by snapshotting these.
type coreMetrics struct {
	ingested          *telemetry.Counter
	droppedDisabled   *telemetry.Counter
	droppedUnlogged   *telemetry.Counter
	pseudonymized     *telemetry.Counter
	requestsDecided   *telemetry.Counter
	requestsDenied    *telemetry.Counter
	notificationsSent *telemetry.Counter

	ingestSeconds *telemetry.Histogram
	decideSeconds *telemetry.Histogram
	requestUser   *telemetry.Histogram
	requestOccup  *telemetry.Histogram
	requestQuery  *telemetry.Histogram
}

func newCoreMetrics(r *telemetry.Registry, engineName string) *coreMetrics {
	m := &coreMetrics{
		ingested: r.Counter("tippers_core_ingested_total",
			"Observations accepted by the capture pipeline."),
		droppedDisabled: r.Counter("tippers_core_dropped_disabled_total",
			"Observations dropped because the sensor was disabled at capture time."),
		droppedUnlogged: r.Counter("tippers_core_dropped_unlogged_total",
			"Observations dropped because logging was off (e.g. wifi opt-out)."),
		pseudonymized: r.Counter("tippers_core_pseudonymized_total",
			"Observations pseudonymized at capture time."),
		requestsDecided: r.Counter("tippers_core_requests_decided_total",
			"Query-time enforcement decisions made by the request manager."),
		requestsDenied: r.Counter("tippers_core_requests_denied_total",
			"Query-time enforcement decisions that denied the flow."),
		notificationsSent: r.Counter("tippers_core_notifications_sent_total",
			"Override notifications delivered to user inboxes."),
		ingestSeconds: r.Histogram("tippers_core_ingest_seconds",
			"Capture-pipeline latency per observation.", nil),
		decideSeconds: r.HistogramWith("tippers_enforce_decide_seconds",
			"Query-time enforcement decision latency.",
			telemetry.Labels{"engine": engineName}, nil),
		requestUser: r.HistogramWith("tippers_core_request_seconds",
			"End-to-end request-manager latency.",
			telemetry.Labels{"path": "user"}, nil),
		requestOccup: r.HistogramWith("tippers_core_request_seconds",
			"End-to-end request-manager latency.",
			telemetry.Labels{"path": "occupancy"}, nil),
		requestQuery: r.HistogramWith("tippers_core_request_seconds",
			"End-to-end request-manager latency.",
			telemetry.Labels{"path": "query"}, nil),
	}
	return m
}

// Metrics returns the registry this BMS reports on. When none was
// supplied in Config, a private registry is created so callers can
// still scrape or snapshot it.
func (b *BMS) Metrics() *telemetry.Registry { return b.metrics }
