package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// BenchmarkStreamFanout measures the per-event cost of fanning one
// ingest stream out to N enforced subscribers. The hub memoizes
// decisions across subscribers, so the reported decides/event stays
// ~constant as N grows — the fan-out's marginal cost is a cache hit
// plus a ring push, not a policy evaluation.
func BenchmarkStreamFanout(b *testing.B) {
	for _, nSubs := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("subs=%d", nSubs), func(b *testing.B) {
			f := newFixture(b)
			if err := f.bms.SetPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
				b.Fatal(err)
			}
			req := enforce.Request{
				ServiceID: "concierge",
				Purpose:   policy.PurposeProvidingService,
				Kind:      sensor.ObsWiFiConnect,
			}
			stats := make([]func() StreamStats, nSubs)
			for i := 0; i < nSubs; i++ {
				st, statsFn, err := f.bms.Subscribe(req, 4096)
				if err != nil {
					b.Fatal(err)
				}
				defer st.Cancel()
				stats[i] = statsFn
				go func() {
					for range st.C {
					}
				}()
			}
			obs := f.wifiObs("aa:00:00:00:00:01", "ap-2", 0)

			// Pace the publisher so neither the hub's bus tap nor the
			// subscription rings overflow: the benchmark measures
			// enforcement fan-out, not loss.
			const window = 256
			waitUntil := func(target uint64) {
				deadline := time.Now().Add(30 * time.Second)
				for {
					lagging := false
					for _, statsFn := range stats {
						if statsFn().Delivered < target {
							lagging = true
							break
						}
					}
					if !lagging {
						return
					}
					if time.Now().After(deadline) {
						b.Fatalf("fan-out stalled waiting for %d deliveries per subscriber", target)
					}
					runtime.Gosched()
				}
			}

			_, missesBefore := f.bms.Streams().CacheStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.bms.Ingest(obs); err != nil {
					b.Fatal(err)
				}
				if (i+1)%window == 0 && i+1 > 2*window {
					waitUntil(uint64(i + 1 - 2*window))
				}
			}
			waitUntil(uint64(b.N))
			b.StopTimer()
			_, missesAfter := f.bms.Streams().CacheStats()
			b.ReportMetric(float64(missesAfter-missesBefore)/float64(b.N), "decides/event")
			b.ReportMetric(float64(nSubs*b.N)/b.Elapsed().Seconds(), "deliveries/s")
		})
	}
}
