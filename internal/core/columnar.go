package core

// Columnar-tier glue: routing the request manager's occupancy path
// and the query layer onto the colstore rollup cubes, plus the
// occupancy answer cache those paths share.
//
// The cubes store ground truth keyed by the real subject — never an
// enforced view — so every consumer here re-runs the requester's
// decisions before release, exactly as the row paths do. Cached
// *answers* (post-enforcement) are therefore only valid for one
// enforcement epoch and one rollup version: a policy or preference
// mutation bumps the epoch (via the stream hub's OnInvalidate fan-
// out), and any ingest or deletion bumps the rollup version, so a
// stale answer can never be served.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/query"
	"github.com/tippers/tippers/internal/sensor"
)

// occupancyRows fetches the candidate observations for an occupancy
// request. When the filter is cube-alignable it returns one synthetic
// observation per rollup cell — the aggregate consumes only
// (space, subject) pairs, which every row of a cell shares, so the
// per-cell view releases exactly what the row scan would — otherwise
// it falls back to the unified segment+tail scan (or the plain row
// store when the tier is disabled). fromRollup reports which path
// served.
func (b *BMS) occupancyRows(f obstore.Filter) (obs []sensor.Observation, fromRollup bool) {
	if b.colstore == nil {
		return b.store.Query(f), false
	}
	if cells, ok := b.occupancyCells(f); ok {
		return cells, true
	}
	return b.colstore.Query(f), false
}

// occupancyCells answers a filter from the minute occupancy cube.
// ok=false means the filter cannot be served exactly (unaligned
// window, seq cursor, pagination, sensor/MAC dimensions the cube does
// not carry) or the cube is disabled; the caller then scans rows.
func (b *BMS) occupancyCells(f obstore.Filter) ([]sensor.Observation, bool) {
	if f.AfterSeq != 0 || f.Limit != 0 || f.DeviceMAC != "" || f.SensorID != "" {
		return nil, false
	}
	if !minuteAligned(f.From) || !minuteAligned(f.To) {
		return nil, false
	}
	cells, _, ok := b.colstore.OccupancyRollup(f.From, f.To)
	if !ok {
		return nil, false
	}
	var spaceSet map[string]bool
	if len(f.SpaceIDs) > 0 {
		spaceSet = make(map[string]bool, len(f.SpaceIDs))
		for _, id := range f.SpaceIDs {
			spaceSet[id] = true
		}
	}
	out := make([]sensor.Observation, 0, len(cells))
	for _, c := range cells {
		if c.UserID == "" {
			// Unattributed readings never contribute to occupancy.
			continue
		}
		if f.Kind != "" && c.Kind != f.Kind {
			continue
		}
		if f.UserID != "" && c.UserID != f.UserID {
			continue
		}
		if spaceSet != nil && !spaceSet[c.SpaceID] {
			continue
		}
		out = append(out, sensor.Observation{
			Seq:     c.MinSeq,
			Kind:    c.Kind,
			Time:    c.Minute,
			SpaceID: c.SpaceID,
			UserID:  c.UserID,
		})
	}
	return out, true
}

func minuteAligned(t time.Time) bool {
	return t.IsZero() || t.Truncate(time.Minute).Equal(t)
}

// queryRollup is the query layer's Env.Rollup hook: pre-aggregated
// ground-truth cells for eligible aggregate plans, served from the
// colstore cubes. nil when the tier is disabled.
func (b *BMS) queryRollup() func(query.RollupRequest) ([]query.RollupEntry, bool) {
	if b.colstore == nil {
		return nil
	}
	return func(req query.RollupRequest) ([]query.RollupEntry, bool) {
		cells, ok := b.colstore.RollupFor(req.Filter, req.NeedSensor, req.NeedValue)
		if !ok {
			return nil, false
		}
		out := make([]query.RollupEntry, len(cells))
		for i, c := range cells {
			out[i] = query.RollupEntry{
				Bucket:   c.Bucket,
				SensorID: c.SensorID,
				Kind:     c.Kind,
				SpaceID:  c.SpaceID,
				UserID:   c.UserID,
				Count:    c.Count,
				Sum:      c.Sum,
				Min:      c.Min,
				Max:      c.Max,
				MinSeq:   c.MinSeq,
			}
		}
		return out, true
	}
}

// occAnswer is one cached post-enforcement occupancy answer, pinned
// to the enforcement epoch and rollup version it was computed under.
type occAnswer struct {
	epoch      uint64
	rollVer    uint64
	aggregates []privacy.AggregateCount
	k          int
	considered int
	released   int
	relObs     int
}

// occupancyCache memoizes rollup-served occupancy answers. Keys fold
// in the evaluation minute (decisions have minute resolution — window
// rules), and entries validate against (enforcement epoch, rollup
// version) on every hit — rule mutations bump the epoch, any ingest
// or deletion bumps the rollup version — so a hit is provably the
// answer a fresh evaluation would produce. Answers whose decisions
// carried override notifications are never cached (replaying them
// would swallow user notifications, the same constraint the stream
// memo honors).
type occupancyCache struct {
	mu      sync.Mutex
	entries map[string]occAnswer
	hits    uint64
	misses  uint64
}

const occCacheMax = 256

func (c *occupancyCache) get(key string, epoch, rollVer uint64) (occAnswer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.entries[key]
	if !ok || a.epoch != epoch || a.rollVer != rollVer {
		c.misses++
		return occAnswer{}, false
	}
	c.hits++
	return a, true
}

func (c *occupancyCache) put(key string, a occAnswer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]occAnswer)
	}
	if len(c.entries) >= occCacheMax {
		c.entries = make(map[string]occAnswer)
	}
	c.entries[key] = a
}

func (c *occupancyCache) clear() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
}

// occCacheKey canonicalizes the decision-relevant dimensions of an
// occupancy request, evaluated at now. Every field the engine or the
// filter reads is in the key — including the evaluation minute, the
// resolution at which window rules change — except SubjectID (the
// aggregate path decides per candidate subject, not per
// requester-named subject).
func occCacheKey(req enforce.Request, minK int, now time.Time) string {
	at := req.Time
	if at.IsZero() {
		at = now
	}
	var sb strings.Builder
	sb.WriteString(req.ServiceID)
	sb.WriteByte(0)
	sb.WriteString(string(req.Purpose))
	sb.WriteByte(0)
	sb.WriteString(req.SpaceID)
	sb.WriteByte(0)
	sb.WriteString(string(req.Kind))
	sb.WriteByte(0)
	fmt.Fprintf(&sb, "%d\x00%d\x00", req.Granularity, at.Truncate(time.Minute).Unix())
	sb.WriteString(strconv.FormatInt(req.From.UnixNano(), 10))
	sb.WriteByte(0)
	sb.WriteString(strconv.FormatInt(req.To.UnixNano(), 10))
	sb.WriteByte(0)
	sb.WriteString(strconv.Itoa(minK))
	return sb.String()
}
