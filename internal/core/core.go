// Package core implements TIPPERS, the paper's privacy-aware building
// management system (Figure 1): the Sensor Manager (capture-time
// enforcement and attribution), Policy Manager (building policies,
// actuation, retention), User Preference Manager (preferences,
// conflict detection, notifications), and Request Manager (query-time
// enforcement for services).
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/bus"
	"github.com/tippers/tippers/internal/colstore"
	"github.com/tippers/tippers/internal/enforce"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
	"github.com/tippers/tippers/internal/stream"
	"github.com/tippers/tippers/internal/telemetry"
)

// Config wires a BMS. Zero-value collaborators are constructed
// automatically where possible.
type Config struct {
	// Spaces is the building's spatial model. Required.
	Spaces *spatial.Model
	// Users is the inhabitant directory. Required.
	Users *profile.Directory
	// Sensors is the deployed-sensor registry. Required.
	Sensors *sensor.Registry
	// Services is the service registry; nil creates an empty one.
	Services *service.Registry
	// Store is the observation store the BMS ingests into; nil creates
	// a fresh in-memory store. Supply one opened with
	// obstore.OpenDurable for write-ahead-logged persistence — the BMS
	// takes ownership and closes it on Close.
	Store *obstore.Store
	// Engine is the query-time enforcement engine; nil selects
	// Compiled (rules compiled to an indexed decision structure, plus
	// a decision memo).
	Engine enforce.Engine
	// Strategy is the conflict-resolution strategy; zero selects
	// MostRestrictive.
	Strategy reasoner.Strategy
	// DefaultAllow is the decision when no preference matches
	// (see enforce.Config).
	DefaultAllow bool
	// GroupDefaults are per-group default rules applied when a
	// subject has no personal preference (see enforce.GroupDefault).
	// Ignored when a custom Engine is supplied.
	GroupDefaults []enforce.GroupDefault
	// PseudonymKey keys MAC pseudonymization; nil derives an insecure
	// fixed key (fine for simulation; a deployment must set it).
	PseudonymKey []byte
	// NoiseSeed seeds the Laplace noiser for reproducible runs.
	NoiseSeed int64
	// BusBuffer is the per-subscriber event buffer (default 256).
	BusBuffer int
	// Clock overrides time.Now for tests and simulation.
	Clock func() time.Time
	// Metrics is the telemetry registry pipeline counters, latency
	// histograms, and collaborator metrics register on; nil creates a
	// private registry (reachable via BMS.Metrics).
	Metrics *telemetry.Registry
	// Tracer records sampled pipeline spans (ingest, enforcement
	// stages, store/WAL, stream delivery). nil disables tracing — the
	// span call sites then cost one context lookup each.
	Tracer *telemetry.Tracer
	// TraceBuffer caps the decision-trace ring buffer (default 256).
	TraceBuffer int
	// StreamBuffer is the default per-subscription ring capacity for
	// live streams (default 256).
	StreamBuffer int
	// StreamPolicy is the default backpressure policy for live
	// streams (default stream.DropOldest).
	StreamPolicy stream.Backpressure
	// ColumnarDir is the directory the columnar tier persists sealed
	// segments into; empty keeps the tier in memory (still compacted,
	// still serving rollups, just not crash-durable).
	ColumnarDir string
	// ColumnarBucket is the columnar tier's segment bucket duration
	// (default 1h; see colstore.Config.BucketDur).
	ColumnarBucket time.Duration
	// ColumnarRollupMax caps the rollup cubes' total entry count
	// (default colstore's 1M); past it the cubes shut down and readers
	// fall back to scans. Raise it for dense multi-month datasets.
	ColumnarRollupMax int
	// DisableColumnar turns the columnar tier off entirely: queries
	// scan the row store directly and no rollups are maintained.
	DisableColumnar bool
}

// Stats counts pipeline outcomes for the experiments.
type Stats struct {
	Ingested          uint64
	DroppedDisabled   uint64 // sensor disabled at capture time
	DroppedUnlogged   uint64 // logging turned off (e.g. wifi opt-out)
	Pseudonymized     uint64
	RequestsDecided   uint64
	RequestsDenied    uint64
	NotificationsSent uint64
}

// BMS is one TIPPERS node.
type BMS struct {
	cfg      Config
	store    *obstore.Store
	bus      *bus.Bus
	engine   enforce.Engine
	services *service.Registry
	reason   *reasoner.Reasoner
	transf   *privacy.Transformer
	pseud    *privacy.Pseudonymizer
	clock    func() time.Time

	metrics *telemetry.Registry
	met     *coreMetrics
	tracer  *telemetry.Tracer
	traces  *traceRing
	streams *stream.Hub

	mu        sync.RWMutex
	policies  map[string]policy.BuildingPolicy
	prefs     map[string]policy.Preference
	conflicts []reasoner.Conflict
	inbox     map[string][]enforce.Notification

	retainStop chan struct{}
	retainDone chan struct{}

	// colstore is the columnar tier: sealed segments behind the row
	// store's watermark plus the rollup cubes. nil when disabled.
	colstore *colstore.Store
	occCache occupancyCache

	compactStop chan struct{}
	compactDone chan struct{}
}

// New constructs a BMS.
func New(cfg Config) (*BMS, error) {
	if cfg.Spaces == nil || cfg.Users == nil || cfg.Sensors == nil {
		return nil, errors.New("core: Spaces, Users, and Sensors are required")
	}
	if cfg.Services == nil {
		cfg.Services = service.NewRegistry()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.BusBuffer == 0 {
		cfg.BusBuffer = 256
	}
	key := cfg.PseudonymKey
	if key == nil {
		key = []byte("tippers-simulation-key")
	}
	for _, d := range cfg.GroupDefaults {
		if err := d.Check(); err != nil {
			return nil, err
		}
	}
	engine := cfg.Engine
	if engine == nil {
		engine = enforce.NewCompiled(enforce.Config{
			Spaces:        cfg.Spaces,
			Services:      cfg.Services,
			DefaultAllow:  cfg.DefaultAllow,
			GroupDefaults: cfg.GroupDefaults,
		})
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	store := cfg.Store
	if store == nil {
		store = obstore.New()
	}
	b := &BMS{
		cfg:      cfg,
		store:    store,
		bus:      bus.New(cfg.BusBuffer),
		engine:   engine,
		services: cfg.Services,
		reason:   reasoner.New(cfg.Spaces, cfg.Strategy),
		transf:   privacy.NewTransformer(cfg.Spaces, cfg.NoiseSeed, key),
		pseud:    privacy.NewPseudonymizer(key),
		clock:    cfg.Clock,
		metrics:  reg,
		tracer:   cfg.Tracer,
		met:      newCoreMetrics(reg, enforce.EngineName(engine)),
		traces:   newTraceRing(cfg.TraceBuffer),
		policies: make(map[string]policy.BuildingPolicy),
		prefs:    make(map[string]policy.Preference),
		inbox:    make(map[string][]enforce.Notification),
	}
	if !cfg.DisableColumnar {
		// The columnar tier rides the row store as a listener: closed
		// buckets compact into immutable segments, and the rollup cubes
		// stay in lockstep with ingest. Queries read through it (segments
		// behind the watermark, row shards ahead of it).
		cs, err := colstore.Open(colstore.Config{
			Dir:              cfg.ColumnarDir,
			BucketDur:        cfg.ColumnarBucket,
			Clock:            cfg.Clock,
			RollupMaxEntries: cfg.ColumnarRollupMax,
		})
		if err != nil {
			return nil, fmt.Errorf("core: opening columnar tier: %w", err)
		}
		cs.AttachStore(store)
		cs.RegisterMetrics(reg)
		b.colstore = cs
	}
	// Collaborators expose their internals on the same registry; an
	// engine that can report (Compiled, Instrumented) joins in.
	b.store.RegisterMetrics(reg)
	// The store forwards the tracer to its WAL so group-commit fsync
	// batches show up as spans.
	b.store.SetTracer(cfg.Tracer)
	cfg.Tracer.RegisterMetrics(reg)
	b.bus.RegisterMetrics(reg)
	b.reason.RegisterMetrics(reg)
	if mr, ok := engine.(interface {
		RegisterMetrics(*telemetry.Registry)
	}); ok {
		mr.RegisterMetrics(reg)
	}
	// The stream hub taps the bus and re-runs the full decision
	// pipeline per subscriber per event, memoizing decisions across
	// subscribers. Rule mutations invalidate the memo (see
	// RegisterPolicy, SetPreference, RemovePreference).
	hub, err := stream.NewHub(stream.Config{
		Store: b.store,
		Bus:   b.bus,
		Decide: func(req enforce.Request) enforce.Decision {
			return b.engine.Decide(req, b.subjectGroups(req.SubjectID))
		},
		Record: b.recordDecision,
		Apply: func(d enforce.Decision, obs []sensor.Observation) ([]sensor.Observation, error) {
			return enforce.ApplyDecision(d, obs, b.transf)
		},
		Filter:        b.filterFor,
		Metrics:       reg,
		Tracer:        cfg.Tracer,
		DefaultBuffer: cfg.StreamBuffer,
		DefaultPolicy: cfg.StreamPolicy,
		BusBuffer:     cfg.BusBuffer * 4,
		// Rule mutations flush every decision-derived cache in one
		// motion: the hub's own memo, the engine's decision memo, the
		// columnar tier's enforcement epoch, and the occupancy answer
		// cache. (Mutations through the engine already invalidate its
		// memo atomically; this covers engines mutated out of band.)
		OnInvalidate: func() {
			if inv, ok := b.engine.(interface{ Invalidate() }); ok {
				inv.Invalidate()
			}
			if b.colstore != nil {
				b.colstore.Invalidate()
			}
			b.occCache.clear()
		},
	})
	if err != nil {
		return nil, err
	}
	b.streams = hub
	return b, nil
}

// Store exposes the observation store (read-mostly; examples and
// experiments inspect it).
func (b *BMS) Store() *obstore.Store { return b.store }

// Bus exposes the event bus for subscribers (services, IoTAs).
func (b *BMS) Bus() *bus.Bus { return b.bus }

// Spaces returns the spatial model.
func (b *BMS) Spaces() *spatial.Model { return b.cfg.Spaces }

// Users returns the inhabitant directory.
func (b *BMS) Users() *profile.Directory { return b.cfg.Users }

// Sensors returns the sensor registry.
func (b *BMS) Sensors() *sensor.Registry { return b.cfg.Sensors }

// Services returns the service registry.
func (b *BMS) Services() *service.Registry { return b.services }

// Engine returns the enforcement engine.
func (b *BMS) Engine() enforce.Engine { return b.engine }

// Streams returns the live-stream hub: policy-enforced continuous
// queries with resume cursors (see internal/stream).
func (b *BMS) Streams() *stream.Hub { return b.streams }

// Columnar returns the columnar storage tier, or nil when disabled
// (Config.DisableColumnar).
func (b *BMS) Columnar() *colstore.Store { return b.colstore }

// Tracer returns the pipeline tracer (nil when tracing is disabled).
func (b *BMS) Tracer() *telemetry.Tracer { return b.tracer }

// Ready reports whether the node can serve: the observation store is
// open (its WAL, when durable, still writable) and the stream hub is
// accepting subscriptions. This is the /v1/readyz probe.
func (b *BMS) Ready() error {
	if err := b.store.Ready(); err != nil {
		return err
	}
	if !b.streams.Accepting() {
		return errors.New("core: stream hub closed")
	}
	return nil
}

// Stats returns a snapshot of pipeline counters. The struct and its
// meaning are unchanged from the pre-telemetry era; the values are
// now read off the lock-free registry counters.
func (b *BMS) Stats() Stats {
	return Stats{
		Ingested:          b.met.ingested.Value(),
		DroppedDisabled:   b.met.droppedDisabled.Value(),
		DroppedUnlogged:   b.met.droppedUnlogged.Value(),
		Pseudonymized:     b.met.pseudonymized.Value(),
		RequestsDecided:   b.met.requestsDecided.Value(),
		RequestsDenied:    b.met.requestsDenied.Value(),
		NotificationsSent: b.met.notificationsSent.Value(),
	}
}

// Ingest is the capture pipeline (Figure 1 steps 2–3): a sensor
// reading enters, capture-time enforcement applies the sensor's
// current privacy settings, the reading is attributed to a user via
// device MAC, stored, and published on the bus. It is IngestCtx
// without a caller context (no trace to continue).
func (b *BMS) Ingest(o sensor.Observation) error {
	return b.IngestCtx(context.Background(), o)
}

// IngestCtx is Ingest continuing the trace carried by ctx: when the
// trace is sampled, the capture pipeline and the store append are
// recorded as spans.
func (b *BMS) IngestCtx(ctx context.Context, o sensor.Observation) error {
	t0 := time.Now()
	defer b.met.ingestSeconds.ObserveSince(t0)
	ctx, span := b.tracer.StartSpan(ctx, "bms.ingest")
	defer span.End()
	span.SetAttr("sensor", o.SensorID)
	s, ok := b.cfg.Sensors.Get(o.SensorID)
	if !ok {
		return fmt.Errorf("core: observation from unregistered sensor %q", o.SensorID)
	}
	if !s.Enabled() {
		b.met.droppedDisabled.Inc()
		return nil
	}
	if o.Kind == sensor.ObsWiFiConnect && !s.BoolSetting("log_connections") {
		// The Figure 4 "No location sensing" opt-out lands here: the
		// AP keeps serving traffic but logs nothing.
		b.met.droppedUnlogged.Inc()
		return nil
	}
	if o.SpaceID == "" && !s.Mobile {
		o.SpaceID = s.SpaceID
	}
	if o.Time.IsZero() {
		o.Time = b.clock()
	}
	// Attribution: resolve the device MAC to its owner — unless the
	// sensor pseudonymizes at capture, in which case the reading is
	// unlinkable by design.
	if o.DeviceMAC != "" {
		if s.BoolSetting("hash_mac") {
			o = b.pseud.PseudonymizeObservation(o)
			b.met.pseudonymized.Inc()
		} else if o.UserID == "" {
			if u, ok := b.cfg.Users.LookupMAC(o.DeviceMAC); ok {
				o.UserID = u.ID
			}
		}
	}
	_, apSpan := b.tracer.StartSpan(ctx, "obstore.append")
	stored, err := b.store.Append(o)
	if err != nil {
		apSpan.SetAttr("error", err.Error())
		apSpan.End()
		return err
	}
	apSpan.SetAttrInt("seq", int64(stored.Seq))
	apSpan.End()
	b.met.ingested.Inc()
	b.bus.Publish(bus.TopicObservations, stored)
	return nil
}

// RegisterPolicy installs a building policy (Figure 1 step 1): the
// rule enters the enforcement engine, its sensor settings are
// actuated across the scoped sensors, its retention period is
// installed in the store, and conflicts with existing preferences are
// detected and resolved.
func (b *BMS) RegisterPolicy(p policy.BuildingPolicy) error {
	if err := p.Check(); err != nil {
		return err
	}
	b.mu.Lock()
	if _, dup := b.policies[p.ID]; dup {
		b.mu.Unlock()
		return fmt.Errorf("core: duplicate policy %q", p.ID)
	}
	b.policies[p.ID] = p
	b.mu.Unlock()

	if err := b.engine.AddPolicy(p); err != nil {
		return err
	}
	if len(p.Settings) > 0 {
		if err := b.actuateScope(p.Scope, p.Settings); err != nil {
			return fmt.Errorf("core: actuating policy %s: %w", p.ID, err)
		}
	}
	if p.Kind == policy.KindCollection && !p.Retention.IsZero() {
		b.store.AddRetentionRule(obstore.RetentionRule{
			Kind: p.Scope.ObsKind,
			TTL:  p.Retention,
		})
	}
	b.streams.Invalidate()
	b.detectConflicts()
	return nil
}

// actuateScope applies settings to every registered sensor the scope
// covers (type + spatial subtree).
func (b *BMS) actuateScope(sc policy.Scope, settings map[string]string) error {
	var targets []*sensor.Sensor
	if sc.SensorType != 0 {
		targets = b.cfg.Sensors.ByType(sc.SensorType)
	} else {
		targets = b.cfg.Sensors.All()
	}
	for _, s := range targets {
		if sc.SpaceID != "" {
			in, err := b.cfg.Spaces.Contained(s.SpaceID, sc.SpaceID)
			if err != nil || !in {
				continue
			}
		}
		if err := b.cfg.Sensors.Actuate(s.ID, settings); err != nil {
			return err
		}
		b.bus.Publish(bus.TopicSettings, bus.SettingsChange{SensorID: s.ID, Changes: settings})
	}
	return nil
}

// SetPreference installs (or replaces) a user preference (Figure 1
// step 8: the IoTA communicates the user's settings). Conflicts with
// building policies are detected; override resolutions generate
// notifications delivered to the user's inbox and the bus.
func (b *BMS) SetPreference(p policy.Preference) error {
	if err := p.Check(); err != nil {
		return err
	}
	if _, ok := b.cfg.Users.Lookup(p.UserID); !ok {
		return fmt.Errorf("core: preference for unknown user %q", p.UserID)
	}
	if err := b.engine.AddPreference(p); err != nil {
		return err
	}
	b.mu.Lock()
	b.prefs[p.ID] = p
	b.mu.Unlock()
	b.streams.Invalidate()
	b.detectConflicts()
	return nil
}

// RemovePreference uninstalls a preference by ID.
func (b *BMS) RemovePreference(id string) bool {
	if !b.engine.RemovePreference(id) {
		return false
	}
	b.mu.Lock()
	delete(b.prefs, id)
	b.mu.Unlock()
	b.streams.Invalidate()
	b.detectConflicts()
	return true
}

// detectConflicts re-runs the reasoner over the current rule sets and
// publishes newly resolved conflicts (override notifications reach
// the affected users).
func (b *BMS) detectConflicts() {
	b.mu.RLock()
	pols := make([]policy.BuildingPolicy, 0, len(b.policies))
	for _, p := range b.policies {
		pols = append(pols, p)
	}
	prefs := make([]policy.Preference, 0, len(b.prefs))
	for _, p := range b.prefs {
		prefs = append(prefs, p)
	}
	b.mu.RUnlock()

	conflicts := b.reason.Detect(pols, prefs)

	b.mu.Lock()
	previous := make(map[string]bool, len(b.conflicts))
	for _, c := range b.conflicts {
		previous[conflictKey(c)] = true
	}
	b.conflicts = conflicts
	var fresh []reasoner.Conflict
	for _, c := range conflicts {
		if !previous[conflictKey(c)] {
			fresh = append(fresh, c)
		}
	}
	for _, c := range fresh {
		if c.Resolution.NotifyUserID != "" {
			n := enforce.Notification{
				UserID:       c.Resolution.NotifyUserID,
				PolicyID:     c.PolicyID,
				PreferenceID: c.PreferenceID,
				Message:      c.Resolution.Explanation,
			}
			b.inbox[n.UserID] = append(b.inbox[n.UserID], n)
			b.met.notificationsSent.Inc()
		}
	}
	b.mu.Unlock()

	for _, c := range fresh {
		b.bus.Publish(bus.TopicConflicts, c)
	}
}

func conflictKey(c reasoner.Conflict) string {
	return fmt.Sprintf("%d|%s|%s|%s", c.Kind, c.PolicyID, c.PreferenceID, c.OtherPreferenceID)
}

// Conflicts returns the current resolved conflicts.
func (b *BMS) Conflicts() []reasoner.Conflict {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]reasoner.Conflict, len(b.conflicts))
	copy(out, b.conflicts)
	return out
}

// Policies returns the installed building policies sorted by ID.
func (b *BMS) Policies() []policy.BuildingPolicy {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]policy.BuildingPolicy, 0, len(b.policies))
	for _, p := range b.policies {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Preferences returns a user's installed preferences sorted by ID.
func (b *BMS) Preferences(userID string) []policy.Preference {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []policy.Preference
	for _, p := range b.prefs {
		if p.UserID == userID {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ForgetUser erases a user's footprint: every observation attributed
// to them is deleted from the store, and their preferences are
// uninstalled. Data collected under safety-critical override policies
// (emergency response, security) is exempt — the building's
// non-negotiable retention obligations survive erasure requests, and
// the exemption is reported so the user can be told exactly what
// remains. Returns (deleted, retained) observation counts.
func (b *BMS) ForgetUser(userID string) (deleted, retained int, err error) {
	if _, ok := b.cfg.Users.Lookup(userID); !ok {
		return 0, 0, fmt.Errorf("core: unknown user %q", userID)
	}
	// Partition the user's observations: those covered by an override
	// collection policy stay.
	var overrideScopes []policy.Scope
	for _, p := range b.Policies() {
		if p.Override && p.Kind == policy.KindCollection {
			overrideScopes = append(overrideScopes, p.Scope)
		}
	}
	obs := b.store.Query(obstore.Filter{UserID: userID})
	var keep []sensor.Observation
	for _, o := range obs {
		ctx := policy.Context{
			SubjectID:  userID,
			SpaceID:    o.SpaceID,
			SensorType: sensor.TypeForKind(o.Kind),
			ObsKind:    o.Kind,
			Time:       o.Time,
		}
		for _, sc := range overrideScopes {
			// The purpose dimension is the policy's own; a collection
			// scope matches its stored data regardless of who asks.
			probe := sc
			probe.Purposes = nil
			if probe.Matches(ctx, b.cfg.Spaces) {
				keep = append(keep, o)
				break
			}
		}
	}
	removed := b.store.DeleteUser(userID)
	// Reinsert the exempt observations.
	for _, o := range keep {
		o.Seq = 0
		if _, err := b.store.Append(o); err != nil {
			return removed - len(keep), len(keep), err
		}
	}
	deleted = removed - len(keep)
	retained = len(keep)

	for _, p := range b.Preferences(userID) {
		b.RemovePreference(p.ID)
	}
	return deleted, retained, nil
}

// FetchNotifications drains a user's notification inbox (their IoTA
// polls this; Figure 1 step 7).
func (b *BMS) FetchNotifications(userID string) []enforce.Notification {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.inbox[userID]
	delete(b.inbox, userID)
	return out
}

// StartRetention launches the storage-time enforcement daemon,
// sweeping expired observations every interval. Stop with
// StopRetention.
func (b *BMS) StartRetention(interval time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.retainStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	b.retainStop = stop
	b.retainDone = done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				b.store.Sweep(b.clock())
			}
		}
	}()
}

// StopRetention stops the retention daemon and waits for it to exit.
func (b *BMS) StopRetention() {
	b.mu.Lock()
	stop, done := b.retainStop, b.retainDone
	b.retainStop, b.retainDone = nil, nil
	b.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// StartCompaction launches the columnar tier's background compactor:
// every interval, closed time buckets behind the row store's head are
// sealed into immutable segments. A no-op when the tier is disabled.
// Stop with StopCompaction.
func (b *BMS) StartCompaction(interval time.Duration) {
	if b.colstore == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.compactStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	b.compactStop = stop
	b.compactDone = done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if _, err := b.colstore.CompactOnce(); err != nil {
					fmt.Fprintf(os.Stderr, "core: columnar compaction: %v\n", err)
				}
			}
		}
	}()
}

// StopCompaction stops the compaction daemon and waits for it to
// exit.
func (b *BMS) StopCompaction() {
	b.mu.Lock()
	stop, done := b.compactStop, b.compactDone
	b.compactStop, b.compactDone = nil, nil
	b.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Close shuts down the BMS: retention and compaction daemons stopped,
// stream hub drained, bus closed.
func (b *BMS) Close() {
	b.StopRetention()
	b.StopCompaction()
	b.streams.Close()
	b.bus.Close()
	if err := b.store.Close(); err != nil {
		// Nothing to do but say so: durable stores flush their WAL here.
		fmt.Fprintf(os.Stderr, "core: closing observation store: %v\n", err)
	}
}
