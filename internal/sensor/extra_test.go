package sensor

import "testing"

func TestTypeForKindInvertsKindForType(t *testing.T) {
	for _, typ := range AllTypes() {
		kind := KindForType(typ)
		if kind == "" {
			continue // actuators
		}
		if got := TypeForKind(kind); got != typ {
			t.Errorf("TypeForKind(KindForType(%v)) = %v", typ, got)
		}
	}
	if got := TypeForKind(ObsOccupancy); got != 0 {
		t.Errorf("derived occupancy has a producing type: %v", got)
	}
	if got := TypeForKind("bogus"); got != 0 {
		t.Errorf("unknown kind mapped: %v", got)
	}
}

func TestDefaultSubsystemCoverage(t *testing.T) {
	want := map[Type]Subsystem{
		TypeCamera:        "camera-subsystem",
		TypeWiFiAP:        "network-subsystem",
		TypeBLEBeacon:     "beacon-subsystem",
		TypePowerMeter:    "energy-subsystem",
		TypeTemperature:   "hvac-subsystem",
		TypeMotion:        "hvac-subsystem",
		TypeHVAC:          "hvac-subsystem",
		TypeAccessControl: "access-subsystem",
	}
	for typ, sub := range want {
		if got := DefaultSubsystem(typ); got != sub {
			t.Errorf("DefaultSubsystem(%v) = %q, want %q", typ, got, sub)
		}
	}
	if got := DefaultSubsystem(Type(99)); got != "misc-subsystem" {
		t.Errorf("unknown type subsystem = %q", got)
	}
}

func TestSpecsSortedAndComplete(t *testing.T) {
	s := MustNew("cam", TypeCamera, "x")
	specs := s.Specs()
	if len(specs) != 4 {
		t.Fatalf("camera specs = %d, want 4", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Fatal("specs not sorted")
		}
	}
}

func TestFloatSettingEdgeCases(t *testing.T) {
	s := MustNew("acc", TypeAccessControl, "x")
	if got := s.FloatSetting("missing"); got != 0 {
		t.Errorf("missing param = %v", got)
	}
	// mode is an enum string: not numeric.
	if got := s.FloatSetting("mode"); got != 0 {
		t.Errorf("non-numeric param = %v", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(invalid) did not panic")
		}
	}()
	MustNew("", TypeCamera, "x")
}

func TestRegistryMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd(dup) did not panic")
		}
	}()
	r := NewRegistry()
	r.MustAdd(MustNew("s", TypeCamera, "x"))
	r.MustAdd(MustNew("s", TypeCamera, "x"))
}
