package sensor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Registry indexes the building's deployed sensors by ID, type, and
// installation space. It is the paper's "Sensor Manager" data plane:
// TIPPERS actuates sensors through it, and the IRR generates resource
// advertisements from it. A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	byID    map[string]*Sensor
	byType  map[Type][]*Sensor
	bySpace map[string][]*Sensor

	onChange []func(sensorID string, changes map[string]string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:    make(map[string]*Sensor),
		byType:  make(map[Type][]*Sensor),
		bySpace: make(map[string][]*Sensor),
	}
}

// Errors returned by Registry operations.
var (
	ErrDuplicateSensor = errors.New("sensor: duplicate sensor ID")
	ErrUnknownSensor   = errors.New("sensor: unknown sensor")
)

// Add registers a sensor.
func (r *Registry) Add(s *Sensor) error {
	if s == nil || s.ID == "" {
		return errors.New("sensor: nil or unnamed sensor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[s.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateSensor, s.ID)
	}
	r.byID[s.ID] = s
	r.byType[s.Type] = append(r.byType[s.Type], s)
	r.bySpace[s.SpaceID] = append(r.bySpace[s.SpaceID], s)
	return nil
}

// MustAdd is Add for construction code with known-good sensors.
func (r *Registry) MustAdd(s *Sensor) *Sensor {
	if err := r.Add(s); err != nil {
		panic(err)
	}
	return s
}

// Get returns the sensor with the given ID.
func (r *Registry) Get(id string) (*Sensor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byID[id]
	return s, ok
}

// ByType returns the sensors of the given type, sorted by ID.
func (r *Registry) ByType(t Type) []*Sensor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedCopy(r.byType[t])
}

// InSpace returns the sensors installed exactly in the given space,
// sorted by ID. Enforcement expands spatial scopes to subtrees before
// calling this.
func (r *Registry) InSpace(spaceID string) []*Sensor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedCopy(r.bySpace[spaceID])
}

// All returns every sensor sorted by ID.
func (r *Registry) All() []*Sensor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Sensor, 0, len(r.byID))
	for _, s := range r.byID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered sensors.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// CountByType returns a map from type to sensor count, used by the
// MUD-style IRR advertisement generator.
func (r *Registry) CountByType() map[Type]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[Type]int, len(r.byType))
	for t, list := range r.byType {
		out[t] = len(list)
	}
	return out
}

// OnChange registers a callback invoked after every successful
// Actuate. Callbacks run synchronously on the actuating goroutine.
func (r *Registry) OnChange(fn func(sensorID string, changes map[string]string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onChange = append(r.onChange, fn)
}

// Actuate applies a validated settings change to one sensor and
// notifies change listeners. This is the building's single actuation
// entry point, so every settings change — whether from a building
// policy (Policy 1's thermostat adjustment) or a user preference
// (Figure 4's wifi opt-out) — is observable in one place.
func (r *Registry) Actuate(sensorID string, changes map[string]string) error {
	r.mu.RLock()
	s, ok := r.byID[sensorID]
	listeners := make([]func(string, map[string]string), len(r.onChange))
	copy(listeners, r.onChange)
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSensor, sensorID)
	}
	if err := s.Apply(changes); err != nil {
		return err
	}
	for _, fn := range listeners {
		fn(sensorID, changes)
	}
	return nil
}

// ActuateType applies a settings change to every sensor of a type
// (subsystem-wide actuation). It stops at the first error; sensors
// already actuated stay actuated — callers needing atomicity across a
// subsystem should validate against Specs first.
func (r *Registry) ActuateType(t Type, changes map[string]string) error {
	for _, s := range r.ByType(t) {
		if err := r.Actuate(s.ID, changes); err != nil {
			return err
		}
	}
	return nil
}

func sortedCopy(in []*Sensor) []*Sensor {
	out := make([]*Sensor, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
