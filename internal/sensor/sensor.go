// Package sensor implements the paper's sensor model (§IV.A.3–5):
// sensors with types and subsystems, validated settings ("a set of
// valid parameters associated with the sensor which determines its
// behavior"), and the observations they produce.
//
// Capture-time enforcement works through this package: when a policy
// or a user preference requires a sensor to behave differently (e.g.
// a camera dropping to low resolution, a WiFi AP hashing MAC
// addresses), the enforcement engine applies new settings here, and
// the simulated drivers honor them when generating observations.
package sensor

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Type classifies a sensor. The paper's DBH deployment includes
// cameras, WiFi APs, BLE beacons, and power-outlet meters; the policy
// examples additionally involve motion, temperature, HVAC, and access
// control (Policy 3's card/fingerprint verification).
type Type int

// Sensor types. Values start at 1 so the zero value is invalid.
const (
	TypeCamera Type = iota + 1
	TypeWiFiAP
	TypeBLEBeacon
	TypePowerMeter
	TypeTemperature
	TypeMotion
	TypeHVAC
	TypeAccessControl
)

var typeNames = map[Type]string{
	TypeCamera:        "Camera",
	TypeWiFiAP:        "WiFi Access Point",
	TypeBLEBeacon:     "Bluetooth Beacon",
	TypePowerMeter:    "Power Meter",
	TypeTemperature:   "Temperature Sensor",
	TypeMotion:        "Motion Sensor",
	TypeHVAC:          "HVAC Unit",
	TypeAccessControl: "Access Control Reader",
}

// String returns the human-readable type name used in policy
// documents (the paper's Figure 2 uses "WiFi Access Point").
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// ParseType maps a policy-document sensor type string to a Type.
func ParseType(s string) (Type, error) {
	for t, n := range typeNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("sensor: unknown sensor type %q", s)
}

// AllTypes returns every defined sensor type in declaration order.
func AllTypes() []Type {
	return []Type{
		TypeCamera, TypeWiFiAP, TypeBLEBeacon, TypePowerMeter,
		TypeTemperature, TypeMotion, TypeHVAC, TypeAccessControl,
	}
}

// Subsystem groups sensors of the same type for management, per the
// paper: "Sensors of the same type can be organized into sensor
// subsystems" (camera subsystem, beacon subsystem, HVAC subsystem).
type Subsystem string

// DefaultSubsystem returns the conventional subsystem for a type.
func DefaultSubsystem(t Type) Subsystem {
	switch t {
	case TypeCamera:
		return "camera-subsystem"
	case TypeWiFiAP:
		return "network-subsystem"
	case TypeBLEBeacon:
		return "beacon-subsystem"
	case TypePowerMeter:
		return "energy-subsystem"
	case TypeTemperature, TypeHVAC, TypeMotion:
		return "hvac-subsystem"
	case TypeAccessControl:
		return "access-subsystem"
	default:
		return "misc-subsystem"
	}
}

// ParamKind is the value type of one settings parameter.
type ParamKind int

// Parameter kinds.
const (
	ParamBool ParamKind = iota + 1
	ParamInt
	ParamFloat
	ParamEnum
	ParamString
)

// ParamSpec declares one valid settings parameter: its kind, its
// legal range or enumeration, and its default. Settings values are
// carried as strings (as they appear in policy documents, e.g.
// "wifi=opt-in" in the paper's Figure 4) and validated against the
// spec on every apply.
type ParamSpec struct {
	Name    string
	Kind    ParamKind
	Min     float64  // ParamInt / ParamFloat
	Max     float64  // ParamInt / ParamFloat
	Enum    []string // ParamEnum
	Default string
}

// Validate checks one value against the spec.
func (p ParamSpec) Validate(value string) error {
	switch p.Kind {
	case ParamBool:
		if value != "true" && value != "false" {
			return fmt.Errorf("sensor: parameter %q: %q is not a bool", p.Name, value)
		}
	case ParamInt:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("sensor: parameter %q: %q is not an integer", p.Name, value)
		}
		if float64(n) < p.Min || float64(n) > p.Max {
			return fmt.Errorf("sensor: parameter %q: %d outside [%g, %g]", p.Name, n, p.Min, p.Max)
		}
	case ParamFloat:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("sensor: parameter %q: %q is not a number", p.Name, value)
		}
		if f < p.Min || f > p.Max {
			return fmt.Errorf("sensor: parameter %q: %g outside [%g, %g]", p.Name, f, p.Min, p.Max)
		}
	case ParamEnum:
		for _, e := range p.Enum {
			if e == value {
				return nil
			}
		}
		return fmt.Errorf("sensor: parameter %q: %q not in %v", p.Name, value, p.Enum)
	case ParamString:
		// any string
	default:
		return fmt.Errorf("sensor: parameter %q has invalid kind %d", p.Name, p.Kind)
	}
	return nil
}

// DefaultSpecs returns the settings schema for a sensor type. Every
// type has an "enabled" parameter; type-specific parameters implement
// the capture-time privacy controls the paper describes (capture
// frequency and resolution for cameras, §IV.A.4; MAC logging for
// APs).
func DefaultSpecs(t Type) []ParamSpec {
	base := []ParamSpec{{Name: "enabled", Kind: ParamBool, Default: "true"}}
	switch t {
	case TypeCamera:
		return append(base,
			ParamSpec{Name: "resolution", Kind: ParamEnum, Enum: []string{"1080p", "720p", "480p"}, Default: "1080p"},
			ParamSpec{Name: "fps", Kind: ParamInt, Min: 1, Max: 60, Default: "15"},
			ParamSpec{Name: "record_audio", Kind: ParamBool, Default: "false"},
		)
	case TypeWiFiAP:
		return append(base,
			ParamSpec{Name: "log_connections", Kind: ParamBool, Default: "true"},
			ParamSpec{Name: "hash_mac", Kind: ParamBool, Default: "false"},
		)
	case TypeBLEBeacon:
		return append(base,
			ParamSpec{Name: "interval_ms", Kind: ParamInt, Min: 100, Max: 10000, Default: "1000"},
			ParamSpec{Name: "tx_power_dbm", Kind: ParamInt, Min: -40, Max: 4, Default: "-12"},
		)
	case TypePowerMeter:
		return append(base,
			ParamSpec{Name: "sample_period_s", Kind: ParamInt, Min: 1, Max: 3600, Default: "60"},
		)
	case TypeTemperature:
		return append(base,
			ParamSpec{Name: "sample_period_s", Kind: ParamInt, Min: 1, Max: 3600, Default: "300"},
		)
	case TypeMotion:
		return append(base,
			ParamSpec{Name: "sensitivity", Kind: ParamFloat, Min: 0, Max: 1, Default: "0.5"},
		)
	case TypeHVAC:
		return append(base,
			ParamSpec{Name: "target_temp_f", Kind: ParamFloat, Min: 55, Max: 90, Default: "70"},
			ParamSpec{Name: "fan_speed", Kind: ParamEnum, Enum: []string{"off", "low", "medium", "high"}, Default: "low"},
		)
	case TypeAccessControl:
		return append(base,
			ParamSpec{Name: "mode", Kind: ParamEnum, Enum: []string{"card", "fingerprint", "card-or-fingerprint"}, Default: "card"},
		)
	default:
		return base
	}
}

// Sensor is one deployed device. A Sensor is safe for concurrent use.
type Sensor struct {
	ID          string
	Name        string
	Type        Type
	Subsystem   Subsystem
	SpaceID     string // where the sensor is installed
	Mobile      bool   // mobile sensors stamp observations with their current location
	Description string

	mu       sync.RWMutex
	specs    map[string]ParamSpec
	settings map[string]string
}

// New constructs a sensor of the given type at the given space with
// the type's default settings schema and defaults applied.
func New(id string, t Type, spaceID string) (*Sensor, error) {
	if id == "" {
		return nil, errors.New("sensor: ID must be non-empty")
	}
	if _, ok := typeNames[t]; !ok {
		return nil, fmt.Errorf("sensor: invalid type %d", int(t))
	}
	s := &Sensor{
		ID:        id,
		Name:      id,
		Type:      t,
		Subsystem: DefaultSubsystem(t),
		SpaceID:   spaceID,
		specs:     make(map[string]ParamSpec),
		settings:  make(map[string]string),
	}
	for _, spec := range DefaultSpecs(t) {
		s.specs[spec.Name] = spec
		s.settings[spec.Name] = spec.Default
	}
	return s, nil
}

// MustNew is New for construction code with known-good arguments.
func MustNew(id string, t Type, spaceID string) *Sensor {
	s, err := New(id, t, spaceID)
	if err != nil {
		panic(err)
	}
	return s
}

// Specs returns the sensor's parameter specifications sorted by name.
func (s *Sensor) Specs() []ParamSpec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ParamSpec, 0, len(s.specs))
	for _, spec := range s.specs {
		out = append(out, spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Settings returns a copy of the current settings.
func (s *Sensor) Settings() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.settings))
	for k, v := range s.settings {
		out[k] = v
	}
	return out
}

// Setting returns the current value of one parameter.
func (s *Sensor) Setting(name string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.settings[name]
	return v, ok
}

// BoolSetting returns a boolean parameter's value, defaulting to
// false for unknown parameters.
func (s *Sensor) BoolSetting(name string) bool {
	v, ok := s.Setting(name)
	return ok && v == "true"
}

// FloatSetting returns a numeric parameter's value, defaulting to 0
// for unknown or non-numeric parameters.
func (s *Sensor) FloatSetting(name string) float64 {
	v, ok := s.Setting(name)
	if !ok {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0
	}
	return f
}

// Enabled reports whether the sensor is capturing.
func (s *Sensor) Enabled() bool { return s.BoolSetting("enabled") }

// Apply validates and applies a settings change. It is atomic: if any
// parameter is unknown or invalid, nothing changes. This is the
// actuation point for the paper's step (8): the IoTA's configured
// privacy settings reach the sensor through TIPPERS calling Apply.
func (s *Sensor) Apply(changes map[string]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, value := range changes {
		spec, ok := s.specs[name]
		if !ok {
			return fmt.Errorf("sensor %s: unknown parameter %q", s.ID, name)
		}
		if err := spec.Validate(value); err != nil {
			return fmt.Errorf("sensor %s: %w", s.ID, err)
		}
	}
	for name, value := range changes {
		s.settings[name] = value
	}
	return nil
}

// ObservationKind names the kind of data a sensor reading carries.
type ObservationKind string

// Observation kinds produced by the simulated drivers. The names
// match the paper's Figure 3 ("wifi_access_point",
// "bluetooth_beacon").
const (
	ObsWiFiConnect  ObservationKind = "wifi_access_point"
	ObsBLESighting  ObservationKind = "bluetooth_beacon"
	ObsPowerReading ObservationKind = "power_reading"
	ObsTempReading  ObservationKind = "temperature_reading"
	ObsMotionEvent  ObservationKind = "motion_event"
	ObsCameraFrame  ObservationKind = "camera_frame"
	ObsCardSwipe    ObservationKind = "card_swipe"
	ObsOccupancy    ObservationKind = "occupancy" // inferred higher-level observation
)

// KindForType returns the primary observation kind a sensor type
// produces.
func KindForType(t Type) ObservationKind {
	switch t {
	case TypeCamera:
		return ObsCameraFrame
	case TypeWiFiAP:
		return ObsWiFiConnect
	case TypeBLEBeacon:
		return ObsBLESighting
	case TypePowerMeter:
		return ObsPowerReading
	case TypeTemperature:
		return ObsTempReading
	case TypeMotion:
		return ObsMotionEvent
	case TypeAccessControl:
		return ObsCardSwipe
	default:
		return ""
	}
}

// TypeForKind returns the sensor type that produces an observation
// kind (the inverse of KindForType). Inferred kinds such as occupancy
// have no single producing type and return 0.
func TypeForKind(k ObservationKind) Type {
	switch k {
	case ObsCameraFrame:
		return TypeCamera
	case ObsWiFiConnect:
		return TypeWiFiAP
	case ObsBLESighting:
		return TypeBLEBeacon
	case ObsPowerReading:
		return TypePowerMeter
	case ObsTempReading:
		return TypeTemperature
	case ObsMotionEvent:
		return TypeMotion
	case ObsCardSwipe:
		return TypeAccessControl
	default:
		return 0
	}
}

// Observation is one captured reading (§IV.A.5): "Each observation
// has a timestamp and a location associated with it."
type Observation struct {
	// Seq is assigned by the observation store on ingest; zero before.
	Seq uint64 `json:"seq,omitempty"`

	SensorID string          `json:"sensor_id"`
	Kind     ObservationKind `json:"kind"`
	Time     time.Time       `json:"time"`
	SpaceID  string          `json:"space_id"`

	// DeviceMAC is set for network observations (WiFi connect, BLE
	// sighting); it may be a pseudonym if the sensor hashes MACs.
	DeviceMAC string `json:"device_mac,omitempty"`
	// UserID is the attributed building inhabitant, or "" if the
	// reading could not be (or must not be) attributed.
	UserID string `json:"user_id,omitempty"`

	// Value is the numeric payload (watts, °F, occupancy count, ...).
	Value float64 `json:"value,omitempty"`
	// Payload carries kind-specific extra fields.
	Payload map[string]string `json:"payload,omitempty"`
}

// Clone returns a deep copy of the observation; privacy mechanisms
// transform copies so the stored ground truth stays intact.
func (o Observation) Clone() Observation {
	out := o
	if o.Payload != nil {
		out.Payload = make(map[string]string, len(o.Payload))
		for k, v := range o.Payload {
			out.Payload[k] = v
		}
	}
	return out
}
