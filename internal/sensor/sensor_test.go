package sensor

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range AllTypes() {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseType("Quantum Sensor"); err == nil {
		t.Error("ParseType(unknown) succeeded")
	}
	if s := Type(42).String(); s != "Type(42)" {
		t.Errorf("Type(42).String() = %q", s)
	}
}

func TestNewAppliesDefaults(t *testing.T) {
	s, err := New("cam-1", TypeCamera, "dbh/1/corr")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Enabled() {
		t.Error("new sensor should default to enabled")
	}
	if v, _ := s.Setting("resolution"); v != "1080p" {
		t.Errorf("resolution default = %q, want 1080p", v)
	}
	if got := s.FloatSetting("fps"); got != 15 {
		t.Errorf("fps default = %v, want 15", got)
	}
	if s.Subsystem != "camera-subsystem" {
		t.Errorf("Subsystem = %q", s.Subsystem)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("", TypeCamera, "x"); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := New("s", Type(0), "x"); err == nil {
		t.Error("zero type accepted")
	}
	if _, err := New("s", Type(99), "x"); err == nil {
		t.Error("invalid type accepted")
	}
}

func TestApplyValidation(t *testing.T) {
	s := MustNew("cam-1", TypeCamera, "dbh/1/corr")
	tests := []struct {
		changes map[string]string
		wantErr bool
	}{
		{map[string]string{"resolution": "480p"}, false},
		{map[string]string{"fps": "30"}, false},
		{map[string]string{"enabled": "false"}, false},
		{map[string]string{"fps": "0"}, true},         // below min
		{map[string]string{"fps": "61"}, true},        // above max
		{map[string]string{"fps": "fast"}, true},      // not an int
		{map[string]string{"resolution": "4k"}, true}, // not in enum
		{map[string]string{"enabled": "yes"}, true},   // not a bool
		{map[string]string{"zoom": "2"}, true},        // unknown param
	}
	for _, tt := range tests {
		err := s.Apply(tt.changes)
		if (err != nil) != tt.wantErr {
			t.Errorf("Apply(%v) error = %v, wantErr %v", tt.changes, err, tt.wantErr)
		}
	}
}

func TestApplyAtomic(t *testing.T) {
	s := MustNew("cam-1", TypeCamera, "x")
	err := s.Apply(map[string]string{"fps": "30", "resolution": "4k"})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if got := s.FloatSetting("fps"); got != 15 {
		t.Errorf("failed Apply mutated fps to %v", got)
	}
}

func TestParamSpecKinds(t *testing.T) {
	tests := []struct {
		spec ParamSpec
		good []string
		bad  []string
	}{
		{ParamSpec{Name: "b", Kind: ParamBool}, []string{"true", "false"}, []string{"1", "", "True"}},
		{ParamSpec{Name: "i", Kind: ParamInt, Min: -5, Max: 5}, []string{"-5", "0", "5"}, []string{"-6", "6", "1.5", "x"}},
		{ParamSpec{Name: "f", Kind: ParamFloat, Min: 0, Max: 1}, []string{"0", "0.5", "1"}, []string{"-0.1", "1.1", "NaN?"}},
		{ParamSpec{Name: "e", Kind: ParamEnum, Enum: []string{"a", "b"}}, []string{"a", "b"}, []string{"c", ""}},
		{ParamSpec{Name: "s", Kind: ParamString}, []string{"", "anything"}, nil},
		{ParamSpec{Name: "z", Kind: ParamKind(0)}, nil, []string{"x"}},
	}
	for _, tt := range tests {
		for _, v := range tt.good {
			if err := tt.spec.Validate(v); err != nil {
				t.Errorf("spec %q: Validate(%q) = %v, want nil", tt.spec.Name, v, err)
			}
		}
		for _, v := range tt.bad {
			if err := tt.spec.Validate(v); err == nil {
				t.Errorf("spec %q: Validate(%q) succeeded, want error", tt.spec.Name, v)
			}
		}
	}
}

func TestDefaultSpecsValidDefaults(t *testing.T) {
	// Property: every type's default settings validate against its own specs.
	for _, typ := range AllTypes() {
		for _, spec := range DefaultSpecs(typ) {
			if err := spec.Validate(spec.Default); err != nil {
				t.Errorf("type %v: default for %q invalid: %v", typ, spec.Name, err)
			}
		}
	}
}

func TestKindForTypeCoverage(t *testing.T) {
	for _, typ := range AllTypes() {
		kind := KindForType(typ)
		if typ == TypeHVAC {
			if kind != "" {
				t.Errorf("HVAC is an actuator; kind = %q, want empty", kind)
			}
			continue
		}
		if kind == "" {
			t.Errorf("KindForType(%v) empty", typ)
		}
	}
}

func TestObservationClone(t *testing.T) {
	o := Observation{
		SensorID: "ap-1",
		Kind:     ObsWiFiConnect,
		Time:     time.Date(2017, 6, 1, 9, 0, 0, 0, time.UTC),
		SpaceID:  "dbh/2",
		Payload:  map[string]string{"ap_mac": "02:00:00:00:00:01"},
	}
	c := o.Clone()
	c.Payload["ap_mac"] = "tampered"
	if o.Payload["ap_mac"] != "02:00:00:00:00:01" {
		t.Error("Clone shares Payload map")
	}
	var empty Observation
	if got := empty.Clone(); got.Payload != nil {
		t.Error("Clone of empty observation allocated payload")
	}
}

func TestRegistryAddGet(t *testing.T) {
	r := NewRegistry()
	r.MustAdd(MustNew("ap-1", TypeWiFiAP, "dbh/1"))
	r.MustAdd(MustNew("ap-2", TypeWiFiAP, "dbh/2"))
	r.MustAdd(MustNew("cam-1", TypeCamera, "dbh/1"))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if _, ok := r.Get("ap-1"); !ok {
		t.Error("Get(ap-1) failed")
	}
	if _, ok := r.Get("ghost"); ok {
		t.Error("Get(ghost) succeeded")
	}
	if err := r.Add(MustNew("ap-1", TypeWiFiAP, "dbh/3")); !errors.Is(err, ErrDuplicateSensor) {
		t.Errorf("duplicate add: %v", err)
	}
	if err := r.Add(nil); err == nil {
		t.Error("nil sensor accepted")
	}
	if got := r.ByType(TypeWiFiAP); len(got) != 2 || got[0].ID != "ap-1" {
		t.Errorf("ByType = %v", got)
	}
	if got := r.InSpace("dbh/1"); len(got) != 2 {
		t.Errorf("InSpace(dbh/1) = %d sensors", len(got))
	}
	if got := r.CountByType(); got[TypeWiFiAP] != 2 || got[TypeCamera] != 1 {
		t.Errorf("CountByType = %v", got)
	}
	all := r.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Error("All() not sorted")
		}
	}
}

func TestActuateAndListeners(t *testing.T) {
	r := NewRegistry()
	r.MustAdd(MustNew("ap-1", TypeWiFiAP, "dbh/1"))
	var mu sync.Mutex
	var calls []string
	r.OnChange(func(id string, changes map[string]string) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, id)
	})
	if err := r.Actuate("ap-1", map[string]string{"hash_mac": "true"}); err != nil {
		t.Fatal(err)
	}
	s, _ := r.Get("ap-1")
	if !s.BoolSetting("hash_mac") {
		t.Error("setting not applied")
	}
	if len(calls) != 1 || calls[0] != "ap-1" {
		t.Errorf("listener calls = %v", calls)
	}
	if err := r.Actuate("ghost", nil); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("Actuate(ghost) = %v", err)
	}
	// Failed actuation must not notify listeners.
	calls = nil
	if err := r.Actuate("ap-1", map[string]string{"bogus": "1"}); err == nil {
		t.Fatal("bogus actuation accepted")
	}
	if len(calls) != 0 {
		t.Error("listener notified on failed actuation")
	}
}

func TestActuateType(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.MustAdd(MustNew(fmt.Sprintf("ap-%d", i), TypeWiFiAP, "dbh/1"))
	}
	if err := r.ActuateType(TypeWiFiAP, map[string]string{"log_connections": "false"}); err != nil {
		t.Fatal(err)
	}
	for _, s := range r.ByType(TypeWiFiAP) {
		if s.BoolSetting("log_connections") {
			t.Errorf("%s still logging", s.ID)
		}
	}
	if err := r.ActuateType(TypeWiFiAP, map[string]string{"bogus": "1"}); err == nil {
		t.Error("bogus subsystem actuation accepted")
	}
}

func TestSettingsIsCopy(t *testing.T) {
	s := MustNew("ap-1", TypeWiFiAP, "x")
	m := s.Settings()
	m["enabled"] = "false"
	if !s.Enabled() {
		t.Error("Settings() exposed internal map")
	}
}

func TestConcurrentActuation(t *testing.T) {
	r := NewRegistry()
	r.MustAdd(MustNew("ble-1", TypeBLEBeacon, "dbh/1"))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := strconv.Itoa(100 + i*10)
			if err := r.Actuate("ble-1", map[string]string{"interval_ms": v}); err != nil {
				t.Errorf("Actuate: %v", err)
			}
			r.ByType(TypeBLEBeacon)
			r.All()
		}(i)
	}
	wg.Wait()
	s, _ := r.Get("ble-1")
	// Final value must be one of the written values (no corruption).
	got := s.FloatSetting("interval_ms")
	if got < 100 || got > 250 {
		t.Errorf("interval_ms = %v, outside written range", got)
	}
}

// TestIntSpecValidateProperty: for int specs, Validate accepts exactly
// the integers within [Min, Max].
func TestIntSpecValidateProperty(t *testing.T) {
	spec := ParamSpec{Name: "p", Kind: ParamInt, Min: -100, Max: 100}
	f := func(n int16) bool {
		err := spec.Validate(strconv.Itoa(int(n)))
		inRange := n >= -100 && n <= 100
		return (err == nil) == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
