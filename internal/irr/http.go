package irr

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/telemetry"
)

// WellKnown is the discovery metadata served at /.well-known/irr,
// letting an IoTA decide whether a registry pertains to its location
// before fetching full documents.
type WellKnown struct {
	Name     string   `json:"name"`
	Coverage []string `json:"coverage"`
	// Endpoints for the full documents.
	ResourcesPath string `json:"resources_path"`
	ServicesPath  string `json:"services_path"`
}

// Handler returns the registry's HTTP interface:
//
//	GET /.well-known/irr      discovery metadata
//	GET /resources[?space=S]  Figure-2-shape resource document
//	GET /services             list of Figure-3-shape service policies
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /.well-known/irr", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, WellKnown{
			Name:          r.Name(),
			Coverage:      r.Coverage(),
			ResourcesPath: "/resources",
			ServicesPath:  "/services",
		})
	})
	mux.HandleFunc("GET /resources", func(w http.ResponseWriter, req *http.Request) {
		doc := r.Document(req.URL.Query().Get("space"))
		if len(doc.Resources) == 0 {
			// The schema requires >= 1 resource; an empty answer is a 404.
			http.Error(w, "no resources for this location", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("GET /services", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.ServiceDocs())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Client fetches and validates documents from one IRR.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the registry at baseURL. hc nil
// selects a client with a sane timeout.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: baseURL, hc: hc}
}

// BaseURL returns the registry endpoint this client talks to.
func (c *Client) BaseURL() string { return c.base }

// WellKnown fetches discovery metadata.
func (c *Client) WellKnown(ctx context.Context) (WellKnown, error) {
	var wk WellKnown
	if err := c.getJSON(ctx, "/.well-known/irr", &wk); err != nil {
		return WellKnown{}, err
	}
	return wk, nil
}

// Resources fetches the resource document for a location. The
// document is schema-validated before being returned; a registry
// serving malformed policies is treated as failed, not trusted.
func (c *Client) Resources(ctx context.Context, spaceID string) (policy.ResourceDocument, error) {
	path := "/resources"
	if spaceID != "" {
		path += "?space=" + url.QueryEscape(spaceID)
	}
	raw, err := c.getRaw(ctx, path)
	if err != nil {
		return policy.ResourceDocument{}, err
	}
	return policy.ParseResourceDocument(raw)
}

// Services fetches and validates the advertised service policies.
func (c *Client) Services(ctx context.Context) ([]policy.ServicePolicyDoc, error) {
	raw, err := c.getRaw(ctx, "/services")
	if err != nil {
		return nil, err
	}
	var rawList []json.RawMessage
	if err := json.Unmarshal(raw, &rawList); err != nil {
		return nil, fmt.Errorf("irr: services list parse: %w", err)
	}
	out := make([]policy.ServicePolicyDoc, 0, len(rawList))
	for i, r := range rawList {
		doc, err := policy.ParseServicePolicyDoc(r)
		if err != nil {
			return nil, fmt.Errorf("irr: service policy %d: %w", i, err)
		}
		out = append(out, doc)
	}
	return out, nil
}

func (c *Client) getRaw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	telemetry.InjectTraceparent(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("irr: fetch %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return nil, fmt.Errorf("irr: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("irr: %s returned %s", path, resp.Status)
	}
	return body, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	raw, err := c.getRaw(ctx, path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("irr: decode %s: %w", path, err)
	}
	return nil
}

// Discover probes candidate registry URLs and returns clients for the
// registries that cover the given space (or all registries when
// spaceID is empty). Unreachable candidates are skipped — walking
// past a dead beacon should not break the assistant. covers reports
// spatial relation; nil restricts to exact ID matches.
func Discover(ctx context.Context, candidates []string, spaceID string, covers func(coverage string, spaceID string) bool) []*Client {
	var out []*Client
	for _, base := range candidates {
		c := NewClient(base, nil)
		wk, err := c.WellKnown(ctx)
		if err != nil {
			continue
		}
		if spaceID == "" {
			out = append(out, c)
			continue
		}
		matched := false
		for _, cov := range wk.Coverage {
			if cov == spaceID || (covers != nil && covers(cov, spaceID)) {
				matched = true
				break
			}
		}
		if matched {
			out = append(out, c)
		}
	}
	return out
}
