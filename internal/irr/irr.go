// Package irr implements IoT Resource Registries: the component that
// "broadcast[s] data collection policies and sharing practices of the
// IoT technologies with which users interact" (§I). An IRR serves
// machine-readable policy documents (Figure 2/3 shapes) over HTTP;
// IoT Assistants discover registries covering their location and
// fetch the policies of nearby resources (Figure 1 steps 4–5).
//
// Registries can be populated manually or auto-generated from a
// building's sensor registry and policy set — the automation the
// paper envisions via Manufacturer Usage Descriptions (§V.B).
package irr

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// Entry is one advertised resource with its spatial coverage.
type Entry struct {
	// SpaceID is the subtree the resource's collection covers.
	SpaceID  string
	Resource policy.Resource
}

// Registry holds advertisements and answers location-scoped queries.
// It is safe for concurrent use.
type Registry struct {
	name   string
	spaces *spatial.Model

	mu       sync.RWMutex
	entries  []Entry
	services map[string]policy.ServicePolicyDoc
}

// NewRegistry returns an empty registry. name identifies the registry
// in discovery metadata; spaces resolves coverage queries (nil means
// exact-ID coverage matching).
func NewRegistry(name string, spaces *spatial.Model) *Registry {
	return &Registry{
		name:     name,
		spaces:   spaces,
		services: make(map[string]policy.ServicePolicyDoc),
	}
}

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// Publish validates and adds one resource advertisement covering the
// given space.
func (r *Registry) Publish(spaceID string, res policy.Resource) error {
	doc := policy.ResourceDocument{Resources: []policy.Resource{res}}
	if err := doc.Validate(); err != nil {
		return fmt.Errorf("irr: rejected advertisement: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, Entry{SpaceID: spaceID, Resource: res})
	return nil
}

// PublishService validates and adds a service policy document
// (Figure 3 shape).
func (r *Registry) PublishService(doc policy.ServicePolicyDoc) error {
	if err := doc.Validate(); err != nil {
		return fmt.Errorf("irr: rejected service policy: %w", err)
	}
	if doc.Purpose.ServiceID == "" {
		return errors.New("irr: service policy needs a service_id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[doc.Purpose.ServiceID] = doc
	return nil
}

// Len returns the number of resource entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Coverage returns the distinct space IDs the registry's entries
// cover, sorted. Discovery metadata exposes it.
func (r *Registry) Coverage() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, e := range r.entries {
		if e.SpaceID != "" && !seen[e.SpaceID] {
			seen[e.SpaceID] = true
			out = append(out, e.SpaceID)
		}
	}
	sort.Strings(out)
	return out
}

// Document returns the resource document for a location: every entry
// whose coverage is spatially related to spaceID (the entry covers
// the query space, or lies inside it). An empty spaceID returns
// everything — the paper's "discover technologies in their
// surroundings" with the surroundings being the whole building.
func (r *Registry) Document(spaceID string) policy.ResourceDocument {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []policy.Resource
	for _, e := range r.entries {
		if spaceID == "" || e.SpaceID == "" || e.SpaceID == spaceID {
			out = append(out, e.Resource)
			continue
		}
		if r.spaces != nil {
			in1, err1 := r.spaces.Contained(spaceID, e.SpaceID)
			in2, err2 := r.spaces.Contained(e.SpaceID, spaceID)
			if (err1 == nil && in1) || (err2 == nil && in2) {
				out = append(out, e.Resource)
			}
		}
	}
	return policy.ResourceDocument{Resources: out}
}

// ServiceDocs returns the advertised service policies sorted by
// service ID.
func (r *Registry) ServiceDocs() []policy.ServicePolicyDoc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]policy.ServicePolicyDoc, 0, len(r.services))
	for _, d := range r.services {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Purpose.ServiceID < out[j].Purpose.ServiceID
	})
	return out
}

// AutoGenerateConfig parameterizes MUD-style registry generation.
type AutoGenerateConfig struct {
	BuildingID   string // spatial ID of the building
	BuildingName string // human name for context blocks
	OwnerName    string
	MoreInfoURL  string
	// SettingsBase is the endpoint advertised settings point at;
	// empty suppresses settings blocks.
	SettingsBase string
}

// AutoGenerate populates the registry from a building's enforceable
// policies and deployed sensors: each collection/disclosure policy
// becomes a Figure-2-shape advertisement, and each sensor type with
// deployed units gets an inventory advertisement so users can
// discover technologies that no explicit policy mentions. This is the
// paper's §V.B automation ("we envision that the setup of IRRs can be
// automated").
func AutoGenerate(r *Registry, policies []policy.BuildingPolicy, sensors *sensor.Registry, cfg AutoGenerateConfig) error {
	kind := "Building"
	if r.spaces != nil {
		if sp, ok := r.spaces.Lookup(cfg.BuildingID); ok {
			kind = sp.Kind.String()
		}
	}
	for _, p := range policies {
		if p.Kind != policy.KindCollection && p.Kind != policy.KindDisclosure {
			continue
		}
		res := policy.AdvertisementFor(p, cfg.BuildingName, kind, cfg.OwnerName, cfg.MoreInfoURL, cfg.SettingsBase)
		space := p.Scope.SpaceID
		if space == "" {
			space = cfg.BuildingID
		}
		if err := r.Publish(space, res); err != nil {
			return err
		}
	}
	if sensors != nil {
		counts := sensors.CountByType()
		types := make([]sensor.Type, 0, len(counts))
		for t := range counts {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			obsKind := sensor.KindForType(t)
			res := policy.Resource{
				Info: policy.Info{
					Name:        fmt.Sprintf("%s inventory in %s", t, cfg.BuildingName),
					Description: fmt.Sprintf("%d deployed units of type %s", counts[t], t),
				},
				Context: &policy.ResourceContext{
					Location: &policy.LocationBlock{
						Spatial: policy.SpatialRef{Name: cfg.BuildingName, Type: kind, ID: cfg.BuildingID},
					},
					Sensor: &policy.SensorBlock{Type: t.String()},
				},
			}
			if obsKind != "" {
				res.Observations = []policy.ObservationDesc{{Name: string(obsKind)}}
			}
			if err := r.Publish(cfg.BuildingID, res); err != nil {
				return err
			}
		}
	}
	return nil
}
