package irr

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
)

func testModel(t testing.TB) *spatial.Model {
	t.Helper()
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	m.MustAdd("dbh", spatial.Space{ID: "dbh/2", Kind: spatial.KindFloor, Floor: 2})
	m.MustAdd("dbh/2", spatial.Space{ID: "dbh/2/2065", Kind: spatial.KindRoom, Floor: 2})
	m.MustAdd("", spatial.Space{ID: "other", Kind: spatial.KindBuilding})
	return m
}

func figure2Resource(t testing.TB) policy.Resource {
	t.Helper()
	return policy.Figure2Document().Resources[0]
}

func TestPublishAndDocument(t *testing.T) {
	r := NewRegistry("dbh-irr", testModel(t))
	if err := r.Publish("dbh", figure2Resource(t)); err != nil {
		t.Fatal(err)
	}
	roomRes := figure2Resource(t)
	roomRes.Info.Name = "Camera in room 2065"
	if err := r.Publish("dbh/2/2065", roomRes); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Query at the room: both the building-wide and the room policy apply.
	doc := r.Document("dbh/2/2065")
	if len(doc.Resources) != 2 {
		t.Errorf("room query = %d resources", len(doc.Resources))
	}
	// Query at the building: room resources are inside it.
	doc = r.Document("dbh")
	if len(doc.Resources) != 2 {
		t.Errorf("building query = %d resources", len(doc.Resources))
	}
	// Query at an unrelated building: nothing.
	doc = r.Document("other")
	if len(doc.Resources) != 0 {
		t.Errorf("unrelated query = %d resources", len(doc.Resources))
	}
	// Empty query returns everything.
	if got := r.Document(""); len(got.Resources) != 2 {
		t.Errorf("empty query = %d resources", len(got.Resources))
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	r := NewRegistry("dbh-irr", testModel(t))
	if err := r.Publish("dbh", policy.Resource{}); err == nil {
		t.Error("nameless resource accepted")
	}
	if err := r.PublishService(policy.ServicePolicyDoc{}); err == nil {
		t.Error("empty service policy accepted")
	}
	// Valid shape but no service_id.
	doc := policy.Figure3Document()
	doc.Purpose.ServiceID = ""
	if err := r.PublishService(doc); err == nil {
		t.Error("service policy without service_id accepted")
	}
}

func TestServiceDocsSorted(t *testing.T) {
	r := NewRegistry("dbh-irr", testModel(t))
	if err := r.PublishService(service.SmartMeeting().PolicyDoc()); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishService(service.Concierge().PolicyDoc()); err != nil {
		t.Fatal(err)
	}
	docs := r.ServiceDocs()
	if len(docs) != 2 || docs[0].Purpose.ServiceID != "concierge" {
		t.Errorf("ServiceDocs = %+v", docs)
	}
	// Republishing replaces.
	if err := r.PublishService(service.Concierge().PolicyDoc()); err != nil {
		t.Fatal(err)
	}
	if len(r.ServiceDocs()) != 2 {
		t.Error("republish duplicated")
	}
}

func TestAutoGenerate(t *testing.T) {
	m := testModel(t)
	sensors := sensor.NewRegistry()
	sensors.MustAdd(sensor.MustNew("ap-1", sensor.TypeWiFiAP, "dbh/2"))
	sensors.MustAdd(sensor.MustNew("ap-2", sensor.TypeWiFiAP, "dbh/2"))
	sensors.MustAdd(sensor.MustNew("cam-1", sensor.TypeCamera, "dbh/2"))

	pols := []policy.BuildingPolicy{
		policy.Policy2EmergencyLocation("dbh"),
		policy.Policy1Comfort("dbh", 70), // automation: not advertised
	}
	r := NewRegistry("dbh-irr", m)
	err := AutoGenerate(r, pols, sensors, AutoGenerateConfig{
		BuildingID:   "dbh",
		BuildingName: "Donald Bren Hall",
		OwnerName:    "UCI",
		SettingsBase: "https://tippers.example/settings",
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 policy ad + 2 sensor-type inventory ads.
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	doc := r.Document("dbh")
	var names []string
	for _, res := range doc.Resources {
		names = append(names, res.Info.Name)
	}
	joined := strings.Join(names, "|")
	if !strings.Contains(joined, "Location tracking in DBH") {
		t.Errorf("policy ad missing: %v", names)
	}
	if !strings.Contains(joined, "WiFi Access Point inventory") || !strings.Contains(joined, "Camera inventory") {
		t.Errorf("inventory ads missing: %v", names)
	}
	// Every generated resource passes the schema (Publish validated).
	if err := doc.Validate(); err != nil {
		t.Errorf("generated document invalid: %v", err)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	m := testModel(t)
	r := NewRegistry("dbh-irr", m)
	if err := r.Publish("dbh", figure2Resource(t)); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishService(service.Concierge().PolicyDoc()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	c := NewClient(srv.URL, nil)
	ctx := context.Background()

	wk, err := c.WellKnown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wk.Name != "dbh-irr" || len(wk.Coverage) != 1 || wk.Coverage[0] != "dbh" {
		t.Errorf("well-known = %+v", wk)
	}

	doc, err := c.Resources(ctx, "dbh/2/2065")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Resources) != 1 || doc.Resources[0].Info.Name != "Location tracking in DBH" {
		t.Errorf("resources = %+v", doc.Resources)
	}

	if _, err := c.Resources(ctx, "other"); err == nil {
		t.Error("404 for uncovered space not surfaced")
	}

	svcs, err := c.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 1 || svcs[0].Purpose.ServiceID != "concierge" {
		t.Errorf("services = %+v", svcs)
	}
}

func TestClientRejectsMalformedServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Valid JSON, invalid documents: resources missing info blocks,
		// services missing observations.
		switch req.URL.Path {
		case "/resources":
			w.Write([]byte(`{"resources":[{}]}`))
		case "/services":
			w.Write([]byte(`[{"purpose":{}}]`))
		default:
			w.Write([]byte(`garbage`))
		}
	}))
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	ctx := context.Background()
	if _, err := c.Resources(ctx, ""); err == nil {
		t.Error("malformed resource document accepted")
	}
	if _, err := c.Services(ctx); err == nil {
		t.Error("malformed services accepted")
	}
	if _, err := c.WellKnown(ctx); err == nil {
		t.Error("garbage well-known accepted")
	}
}

func TestDiscover(t *testing.T) {
	m := testModel(t)
	dbh := NewRegistry("dbh-irr", m)
	if err := dbh.Publish("dbh", figure2Resource(t)); err != nil {
		t.Fatal(err)
	}
	other := NewRegistry("other-irr", m)
	res := figure2Resource(t)
	res.Info.Name = "Other building cameras"
	if err := other.Publish("other", res); err != nil {
		t.Fatal(err)
	}
	s1 := httptest.NewServer(dbh.Handler())
	defer s1.Close()
	s2 := httptest.NewServer(other.Handler())
	defer s2.Close()

	covers := func(coverage, spaceID string) bool {
		in, err := m.Contained(spaceID, coverage)
		return err == nil && in
	}
	ctx := context.Background()
	got := Discover(ctx, []string{s1.URL, s2.URL, "http://127.0.0.1:1/dead"}, "dbh/2/2065", covers)
	if len(got) != 1 || got[0].BaseURL() != s1.URL {
		t.Fatalf("Discover = %d clients", len(got))
	}
	// Empty space discovers all live registries.
	if got := Discover(ctx, []string{s1.URL, s2.URL}, "", covers); len(got) != 2 {
		t.Errorf("Discover(all) = %d", len(got))
	}
}
