// Package bus implements a small topic-based pub/sub bus connecting
// the BMS pipeline stages: sensor drivers publish observations, the
// storage layer and services subscribe, and enforcement publishes
// user notifications the IoTA layer consumes.
//
// Delivery is best-effort per subscriber: a subscriber that stops
// draining its channel loses events (counted, never blocking the
// publisher). A building's sensing plane must not stall because one
// service is slow — the same reasoning as the Uber guide's
// "don't fire-and-forget goroutines" applied to fan-out: publishers
// stay synchronous and bounded.
package bus

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

// Event is one published message.
type Event struct {
	Topic   string
	Time    time.Time
	Payload any
}

// Well-known topics.
const (
	TopicObservations  = "observations"  // payload: sensor.Observation
	TopicSettings      = "settings"      // payload: SettingsChange
	TopicNotifications = "notifications" // payload: enforce.Notification
	TopicConflicts     = "conflicts"     // payload: reasoner.Conflict
)

// SettingsChange reports a sensor actuation.
type SettingsChange struct {
	SensorID string
	Changes  map[string]string
}

// Subscription is one subscriber's receive side.
type Subscription struct {
	C       <-chan Event
	cancel  func()
	once    sync.Once
	dropped *atomic.Uint64
}

// Cancel detaches the subscription and closes C. Safe to call
// multiple times.
func (s *Subscription) Cancel() {
	s.once.Do(s.cancel)
}

// Dropped returns how many events were dropped on this subscription
// because its buffer was full — the per-consumer view of the
// per-topic total, so a slow subscriber can see its own losses.
func (s *Subscription) Dropped() uint64 {
	if s.dropped == nil {
		return 0
	}
	return s.dropped.Load()
}

// subscriber is one attached consumer: its channel plus its own drop
// counter (per-topic totals hide which consumer is falling behind).
type subscriber struct {
	ch      chan Event
	dropped atomic.Uint64
}

// Bus is a topic-based publisher. The zero value is not usable;
// construct with New.
type Bus struct {
	mu      sync.RWMutex
	nextID  int
	subs    map[string]map[int]*subscriber
	closed  bool
	bufSize int

	dropMu    sync.Mutex
	dropped   map[string]uint64
	published map[string]uint64
}

// New returns a bus whose subscriber channels buffer bufSize events
// (minimum 1).
func New(bufSize int) *Bus {
	if bufSize < 1 {
		bufSize = 1
	}
	return &Bus{
		subs:      make(map[string]map[int]*subscriber),
		bufSize:   bufSize,
		dropped:   make(map[string]uint64),
		published: make(map[string]uint64),
	}
}

// RegisterMetrics exposes per-topic publish/drop counters plus
// subscriber count and the deepest subscriber backlog (lag) on a
// telemetry registry.
func (b *Bus) RegisterMetrics(r *telemetry.Registry) {
	for _, topic := range []string{TopicObservations, TopicSettings, TopicNotifications, TopicConflicts} {
		topic := topic
		labels := telemetry.Labels{"topic": topic}
		r.CounterFuncWith("tippers_bus_published_total",
			"Events published per topic.", labels, func() float64 {
				return float64(b.Published(topic))
			})
		r.CounterFuncWith("tippers_bus_dropped_total",
			"Events dropped per topic because a subscriber buffer was full.", labels, func() float64 {
				return float64(b.Dropped(topic))
			})
	}
	r.GaugeFunc("tippers_bus_subscribers",
		"Active subscriptions across all topics.", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			n := 0
			for _, subs := range b.subs {
				n += len(subs)
			}
			return float64(n)
		})
	r.GaugeFunc("tippers_bus_max_subscriber_backlog",
		"Deepest per-subscriber channel backlog (events buffered but not yet consumed).", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			max := 0
			for _, subs := range b.subs {
				for _, sub := range subs {
					if n := len(sub.ch); n > max {
						max = n
					}
				}
			}
			return float64(max)
		})
	r.GaugeFunc("tippers_bus_max_subscriber_dropped",
		"Most events dropped on any single live subscription (identifies the slowest consumer).", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			var max uint64
			for _, subs := range b.subs {
				for _, sub := range subs {
					if n := sub.dropped.Load(); n > max {
						max = n
					}
				}
			}
			return float64(max)
		})
}

// Subscribe registers a subscriber for a topic with the bus's default
// buffer.
func (b *Bus) Subscribe(topic string) *Subscription {
	return b.SubscribeBuffered(topic, b.bufSize)
}

// SubscribeBuffered registers a subscriber whose channel buffers n
// events (minimum 1), letting slow consumers size their own headroom
// instead of inheriting the bus default.
func (b *Bus) SubscribeBuffered(topic string, n int) *Subscription {
	if n < 1 {
		n = 1
	}
	sub := &subscriber{ch: make(chan Event, n)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(sub.ch)
		return &Subscription{C: sub.ch, cancel: func() {}, dropped: &sub.dropped}
	}
	id := b.nextID
	b.nextID++
	if b.subs[topic] == nil {
		b.subs[topic] = make(map[int]*subscriber)
	}
	b.subs[topic][id] = sub
	return &Subscription{
		C:       sub.ch,
		dropped: &sub.dropped,
		cancel: func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			if s, ok := b.subs[topic][id]; ok {
				delete(b.subs[topic], id)
				close(s.ch)
			}
		},
	}
}

// Publish delivers the payload to every subscriber of the topic,
// never blocking: events to full subscribers are dropped and counted.
func (b *Bus) Publish(topic string, payload any) {
	e := Event{Topic: topic, Time: time.Now(), Payload: payload}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return
	}
	b.dropMu.Lock()
	b.published[topic]++
	b.dropMu.Unlock()
	for _, sub := range b.subs[topic] {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			b.dropMu.Lock()
			b.dropped[topic]++
			b.dropMu.Unlock()
		}
	}
}

// Dropped returns the number of events dropped on a topic due to full
// subscriber buffers.
func (b *Bus) Dropped(topic string) uint64 {
	b.dropMu.Lock()
	defer b.dropMu.Unlock()
	return b.dropped[topic]
}

// Published returns the number of events published on a topic.
func (b *Bus) Published(topic string) uint64 {
	b.dropMu.Lock()
	defer b.dropMu.Unlock()
	return b.published[topic]
}

// Close shuts the bus: all subscriber channels are closed and further
// publishes are ignored.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for topic, subs := range b.subs {
		for id, sub := range subs {
			close(sub.ch)
			delete(subs, id)
		}
		delete(b.subs, topic)
	}
}
