package bus

import (
	"sync"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	b := New(4)
	sub := b.Subscribe(TopicObservations)
	defer sub.Cancel()
	b.Publish(TopicObservations, "hello")
	select {
	case e := <-sub.C:
		if e.Payload != "hello" || e.Topic != TopicObservations {
			t.Errorf("event = %+v", e)
		}
		if e.Time.IsZero() {
			t.Error("event time unset")
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestTopicsIsolated(t *testing.T) {
	b := New(4)
	obs := b.Subscribe(TopicObservations)
	notif := b.Subscribe(TopicNotifications)
	defer obs.Cancel()
	defer notif.Cancel()
	b.Publish(TopicNotifications, 1)
	select {
	case <-obs.C:
		t.Error("observation subscriber got a notification")
	default:
	}
	if len(notif.C) != 1 {
		t.Error("notification not delivered")
	}
}

func TestMultipleSubscribers(t *testing.T) {
	b := New(4)
	a := b.Subscribe(TopicSettings)
	c := b.Subscribe(TopicSettings)
	defer a.Cancel()
	defer c.Cancel()
	b.Publish(TopicSettings, SettingsChange{SensorID: "ap-1"})
	if len(a.C) != 1 || len(c.C) != 1 {
		t.Errorf("fan-out failed: %d, %d", len(a.C), len(c.C))
	}
}

func TestDropWhenFull(t *testing.T) {
	b := New(2)
	sub := b.Subscribe("t")
	defer sub.Cancel()
	for i := 0; i < 5; i++ {
		b.Publish("t", i)
	}
	if got := b.Dropped("t"); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	if len(sub.C) != 2 {
		t.Errorf("buffered = %d, want 2", len(sub.C))
	}
	// First two events are preserved in order.
	if e := <-sub.C; e.Payload != 0 {
		t.Errorf("first = %v", e.Payload)
	}
}

func TestCancel(t *testing.T) {
	b := New(1)
	sub := b.Subscribe("t")
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.C; ok {
		t.Error("channel not closed after cancel")
	}
	// Publishing after cancel must not panic or deliver.
	b.Publish("t", 1)
}

func TestClose(t *testing.T) {
	b := New(1)
	sub := b.Subscribe("t")
	b.Close()
	b.Close() // idempotent
	if _, ok := <-sub.C; ok {
		t.Error("channel not closed after bus close")
	}
	b.Publish("t", 1) // no panic
	post := b.Subscribe("t")
	if _, ok := <-post.C; ok {
		t.Error("subscription after close not immediately closed")
	}
	post.Cancel()
	sub.Cancel() // canceling an already-closed sub must not panic
}

func TestConcurrentPublishers(t *testing.T) {
	b := New(1024)
	sub := b.Subscribe("t")
	defer sub.Cancel()
	var wg sync.WaitGroup
	const publishers, events = 8, 50
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				b.Publish("t", i)
			}
		}()
	}
	wg.Wait()
	if got := len(sub.C) + int(b.Dropped("t")); got != publishers*events {
		t.Errorf("delivered+dropped = %d, want %d", got, publishers*events)
	}
}

func TestSubscribeBuffered(t *testing.T) {
	b := New(1)
	big := b.SubscribeBuffered("t", 8)
	small := b.Subscribe("t")
	defer big.Cancel()
	defer small.Cancel()
	for i := 0; i < 8; i++ {
		b.Publish("t", i)
	}
	if len(big.C) != 8 {
		t.Errorf("buffered sub holds %d, want 8", len(big.C))
	}
	if got := big.Dropped(); got != 0 {
		t.Errorf("big.Dropped = %d, want 0", got)
	}
	if got := small.Dropped(); got != 7 {
		t.Errorf("small.Dropped = %d, want 7", got)
	}
	// Per-topic total is the sum over subscribers.
	if got := b.Dropped("t"); got != 7 {
		t.Errorf("topic Dropped = %d, want 7", got)
	}
	clamped := b.SubscribeBuffered("t", 0)
	defer clamped.Cancel()
	b.Publish("t", 99)
	if len(clamped.C) != 1 {
		t.Error("n=0 should clamp to 1")
	}
}

func TestSubscriberDroppedDistinguishesConsumers(t *testing.T) {
	b := New(2)
	slow := b.Subscribe("t")
	fast := b.SubscribeBuffered("t", 64)
	defer slow.Cancel()
	defer fast.Cancel()
	for i := 0; i < 10; i++ {
		b.Publish("t", i)
	}
	if slow.Dropped() != 8 || fast.Dropped() != 0 {
		t.Errorf("slow=%d fast=%d, want 8/0", slow.Dropped(), fast.Dropped())
	}
}

func TestMinimumBuffer(t *testing.T) {
	b := New(0)
	sub := b.Subscribe("t")
	defer sub.Cancel()
	b.Publish("t", 1)
	if len(sub.C) != 1 {
		t.Error("bufSize 0 should clamp to 1")
	}
}
