package wal

// Crash-recovery suite. Every test here matches -run TestWALRecovery,
// which verify.sh runs twice (-count=2) as the durability gate:
//
//   - deterministic corruption: torn tails and flipped CRC bits are
//     injected byte-by-byte into real segment files;
//   - crash injection: a child process (this test binary re-executed)
//     appends under group commit and is SIGKILLed mid-batch; the
//     parent recovers the directory and checks the committed prefix.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// lastSegmentPath returns the newest segment file in dir.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), segSuffix) {
			last = e.Name() // ReadDir sorts by name; bases are zero-padded
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, last)
}

func TestWALRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: a partial record (length says 100 bytes,
	// only 10 arrive) at the tail of the last segment.
	path := lastSegmentPath(t, dir)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [headerSize + 10]byte
	binary.LittleEndian.PutUint32(torn[0:4], 100)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep := l2.Recovery()
	if rep.TruncatedSegments != 1 {
		t.Errorf("TruncatedSegments = %d, want 1", rep.TruncatedSegments)
	}
	if rep.DroppedBytes != headerSize+10 {
		t.Errorf("DroppedBytes = %d, want %d", rep.DroppedBytes, headerSize+10)
	}
	if rep.DroppedRecords == 0 {
		t.Error("torn tail not counted as a dropped record")
	}
	// The file is back to its pre-tear size and every committed
	// record replays.
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Errorf("truncated size %d, want %d", after.Size(), before.Size())
	}
	got := collect(t, l2, 0)
	if len(got) != 40 {
		t.Fatalf("replayed %d, want 40", len(got))
	}
	// The log stays writable at the correct high-water mark.
	if l2.LastSeq() != 40 {
		t.Fatalf("LastSeq = %d, want 40", l2.LastSeq())
	}
	appendN(t, l2, 41, 45)
	if got := collect(t, l2, 0); len(got) != 45 {
		t.Fatalf("post-recovery appends: %d records, want 45", len(got))
	}
}

func TestWALRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.SegmentBytes = DefaultSegmentBytes // keep everything in one segment
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 50)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the 31st record; records 31..50 must be
	// dropped (truncate at first bad CRC), 1..30 preserved.
	path := lastSegmentPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 30; i++ {
		off += headerSize + int(binary.LittleEndian.Uint32(raw[off:off+4]))
	}
	raw[off+headerSize+seqSize] ^= 0x40 // first payload byte of record 31
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep := l2.Recovery()
	if rep.DroppedRecords != 20 {
		t.Errorf("DroppedRecords = %d, want 20 (the corrupt record and everything after it)", rep.DroppedRecords)
	}
	if rep.Records != 30 {
		t.Errorf("Records = %d, want 30", rep.Records)
	}
	got := collect(t, l2, 0)
	if len(got) != 30 {
		t.Fatalf("replayed %d, want 30", len(got))
	}
	for seq := uint64(1); seq <= 30; seq++ {
		if got[seq] != string(payloadFor(seq)) {
			t.Fatalf("surviving record %d corrupted: %q", seq, got[seq])
		}
	}
	if l2.LastSeq() != 30 {
		t.Fatalf("LastSeq = %d, want 30", l2.LastSeq())
	}
}

func TestWALRecoveryCorruptMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 300) // several 1 KiB segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Corrupt the second segment's first record.
	path := filepath.Join(dir, segs[1].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+seqSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Later segments still replay: the seq stream has a hole where
	// the corrupt segment was cut, nothing else.
	got := collect(t, l2, 0)
	rep := l2.Recovery()
	if rep.TruncatedSegments != 1 {
		t.Errorf("TruncatedSegments = %d, want 1", rep.TruncatedSegments)
	}
	if len(got)+rep.DroppedRecords != 300 {
		t.Errorf("replayed %d + dropped %d != 300", len(got), rep.DroppedRecords)
	}
	if l2.LastSeq() != 300 {
		t.Errorf("LastSeq = %d, want 300 (later segments survive)", l2.LastSeq())
	}
}

// TestWALRecoveryCrashedWriter is the crash-injection harness: it
// re-executes this test binary as a child that appends under group
// commit and reports each durable prefix on stdout, SIGKILLs it
// mid-batch, then recovers the WAL directory and verifies that (a)
// recovery yields zero torn records, (b) every record the child saw
// fsynced is present, and (c) the log accepts appends at the correct
// high-water mark afterwards.
func TestWALRecoveryCrashedWriter(t *testing.T) {
	if os.Getenv("WAL_CRASH_HELPER") != "" {
		t.Skip("helper mode is driven by the parent test")
	}
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGKILL semantics")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestWALCrashWriterHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "WAL_CRASH_HELPER=1", "WAL_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read "synced N" lines until the child has committed a few
	// batches, then kill it in the middle of whatever it's doing.
	var lastSynced uint64
	sc := bufio.NewScanner(stdout)
	deadline := time.After(20 * time.Second)
	lines := make(chan string, 64)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
scan:
	for {
		select {
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("child never reported enough synced batches")
		case line, ok := <-lines:
			if !ok {
				t.Fatal("child exited before being killed")
			}
			if n, found := strings.CutPrefix(line, "synced "); found {
				v, err := strconv.ParseUint(strings.TrimSpace(n), 10, 64)
				if err != nil {
					t.Fatalf("bad child line %q", line)
				}
				lastSynced = v
				if lastSynced >= 400 {
					break scan
				}
			}
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reaps; exit error expected
	go func() {
		for range lines {
		}
	}()

	l, err := Open(testOpts(dir))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer l.Close()

	// (a) Zero torn reads: every replayed payload is intact and the
	// seq stream is contiguous from 1.
	var max uint64
	if err := l.Replay(0, func(seq uint64, payload []byte) error {
		if seq != max+1 {
			return fmt.Errorf("gap: %d after %d", seq, max)
		}
		if string(payload) != string(payloadFor(seq)) {
			return fmt.Errorf("torn record %d: %q", seq, payload)
		}
		max = seq
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// (b) The durable prefix covers everything the child saw fsynced.
	if max < lastSynced {
		t.Fatalf("recovered up to seq %d, but child reported seq %d durable", max, lastSynced)
	}
	t.Logf("child reported %d durable, recovered %d records, recovery=%+v",
		lastSynced, max, l.Recovery())
	// (c) The log continues from the recovered high-water mark.
	if l.LastSeq() != max {
		t.Fatalf("LastSeq = %d, want %d", l.LastSeq(), max)
	}
	appendN(t, l, max+1, max+10)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestWALCrashWriterHelper is the child side of the crash harness; it
// only runs when the parent re-executes the test binary with
// WAL_CRASH_HELPER set. It appends forever (until killed), syncing
// every 100 records and reporting each durable prefix.
func TestWALCrashWriterHelper(t *testing.T) {
	if os.Getenv("WAL_CRASH_HELPER") == "" {
		t.Skip("crash-harness child; run via TestWALRecoveryCrashedWriter")
	}
	dir := os.Getenv("WAL_CRASH_DIR")
	l, err := Open(Options{
		Dir:          dir,
		SegmentBytes: 8 << 10,
		SyncInterval: time.Hour, // explicit Sync calls only: the parent trusts "synced" lines
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq < 1<<40; seq++ {
		if err := l.Append(seq, payloadFor(seq)); err != nil {
			t.Fatal(err)
		}
		if seq%100 == 0 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			fmt.Printf("synced %d\n", seq)
			os.Stdout.Sync()
		}
	}
}
