// Package wal implements the durable observation log under the
// store: a segmented, append-only write-ahead log with CRC-checked
// binary framing, group commit, and crash recovery.
//
// The paper's TIPPERS "captures sensor data and stores it" (Figure 1
// step 3); the in-memory store alone loses every observation since
// the last snapshot on a crash — including the evidence that
// retention obligations (Figure 2's "P6M") were ever enforced. The
// WAL closes that gap: every record is framed, checksummed, and
// appended to a segment file before the store indexes it, so a
// restarted node replays its way back to the exact committed state.
//
// Durability is batched, not per-record: appends land in a buffered
// writer and a group-commit policy decides when the file is fsynced
// (every append, on a byte threshold, or on a background interval).
// This keeps ingest throughput within a small factor of the pure
// in-memory path while bounding the loss window to one commit
// interval.
//
// Records are opaque payloads keyed by a caller-assigned sequence
// number. Framing (little-endian):
//
//	[4B length of seq+payload][4B CRC32-C of seq+payload][8B seq][payload]
//
// Segments are named wal-<firstSeq>.seg and rotate by size. Recovery
// scans every segment, truncates at the first bad frame (a torn tail
// from a mid-batch crash, or a flipped bit), and reports what was
// dropped. Whole sealed segments can be deleted once every record in
// them is checkpointed or past retention — the privacy-relevant
// half of retention enforcement: expired observations must leave
// disk, not just memory.
package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

const (
	headerSize = 8 // 4B length + 4B CRC
	seqSize    = 8 // sequence number inside the framed region
	segPrefix  = "wal-"
	segSuffix  = ".seg"

	// DefaultSegmentBytes rotates segments at 8 MiB.
	DefaultSegmentBytes = 8 << 20
	// DefaultSyncInterval is the group-commit interval.
	DefaultSyncInterval = 10 * time.Millisecond
	// DefaultSyncBytes forces a commit once this much is pending.
	DefaultSyncBytes = 1 << 20
	// MaxRecordBytes bounds one framed record; larger lengths in a
	// segment header are treated as corruption.
	MaxRecordBytes = 16 << 20
)

// castagnoli is the CRC32-C table (the checksum used by iSCSI, ext4,
// and most storage systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options configures Open.
type Options struct {
	// Dir is the segment directory; created if absent. Required.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this
	// size; 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// SyncEveryAppend fsyncs after every Append (safest, slowest).
	SyncEveryAppend bool
	// NoSync never fsyncs on the commit path (the OS decides when
	// data reaches disk; rotation and Close still sync). Fastest,
	// loses up to the OS writeback window on power failure.
	NoSync bool
	// SyncInterval is the group-commit interval when neither
	// SyncEveryAppend nor NoSync is set; 0 selects
	// DefaultSyncInterval.
	SyncInterval time.Duration
	// SyncBytes commits early once this many bytes are pending;
	// 0 selects DefaultSyncBytes.
	SyncBytes int64
	// Logger receives recovery and retention messages; nil selects
	// slog.Default.
	Logger *slog.Logger
}

// SegmentInfo describes one sealed (immutable) segment.
type SegmentInfo struct {
	// Base is the first sequence number in the segment (also its
	// filename key).
	Base uint64
	// Last is the highest sequence number in the segment.
	Last uint64
	// Records is the number of valid records.
	Records int
	// Size is the valid byte size.
	Size int64
}

// RecoveryInfo reports what Open's scan found and repaired.
type RecoveryInfo struct {
	// Segments scanned (sealed + tail).
	Segments int
	// Records that survived the scan and are replayable.
	Records int
	// TruncatedSegments is how many segments had a bad frame and were
	// cut back to their last valid record.
	TruncatedSegments int
	// DroppedBytes is the total bytes discarded by truncation.
	DroppedBytes int64
	// DroppedRecords counts frames discarded after a CRC failure
	// (when frame lengths stayed walkable); a torn tail whose length
	// field itself is garbage counts as one.
	DroppedRecords int
}

type segment struct {
	base    uint64
	last    uint64
	records int
	size    int64
	path    string
}

// Log is a segmented append-only write-ahead log. All methods are
// safe for concurrent use.
type Log struct {
	opts Options
	log  *slog.Logger

	mu       sync.Mutex
	sealed   []*segment // ascending by base
	active   *segment   // nil until the first append after a seal
	f        *os.File
	w        *bufio.Writer
	lastSeq  uint64 // highest seq ever appended or recovered
	pending  int    // records since the last fsync
	pendingB int64  // bytes since the last fsync
	closed   bool
	recovery RecoveryInfo
	tracer   *telemetry.Tracer // nil-safe; see SetTracer

	stop chan struct{}
	done chan struct{}

	// Metrics work standalone (plain atomics); RegisterMetrics
	// exposes them on a telemetry registry.
	appends         *telemetry.Counter
	appendedBytes   *telemetry.Counter
	fsyncs          *telemetry.Counter
	fsyncSeconds    *telemetry.Histogram
	batchRecords    *telemetry.Histogram
	replayedRecords *telemetry.Counter
	droppedRecords  *telemetry.Counter
	droppedBytes    *telemetry.Counter
	segmentsCreated *telemetry.Counter
	segmentsDeleted map[string]*telemetry.Counter // by reason
}

// batchBuckets sizes the group-commit histogram: records per fsync.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// Open opens (or creates) the log in opts.Dir, scanning every segment
// for recovery: each is frame-walked, CRC-verified, and truncated at
// the first bad frame. The tail segment stays writable; appends
// continue after its last valid record.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if opts.SyncBytes <= 0 {
		opts.SyncBytes = DefaultSyncBytes
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating dir: %w", err)
	}
	l := &Log{
		opts:            opts,
		log:             opts.Logger,
		appends:         telemetry.NewCounter(),
		appendedBytes:   telemetry.NewCounter(),
		fsyncs:          telemetry.NewCounter(),
		fsyncSeconds:    telemetry.NewHistogram(nil),
		batchRecords:    telemetry.NewHistogram(batchBuckets),
		replayedRecords: telemetry.NewCounter(),
		droppedRecords:  telemetry.NewCounter(),
		droppedBytes:    telemetry.NewCounter(),
		segmentsCreated: telemetry.NewCounter(),
		segmentsDeleted: map[string]*telemetry.Counter{
			"checkpoint": telemetry.NewCounter(),
			"retention":  telemetry.NewCounter(),
		},
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if !opts.SyncEveryAppend && !opts.NoSync {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// recover scans the directory, repairing each segment and reopening
// the newest as the active tail.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: reading dir: %w", err)
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			l.log.Warn("wal: ignoring unparseable segment name", "file", name)
			continue
		}
		segs = append(segs, &segment{base: base, path: filepath.Join(l.opts.Dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	l.recovery = RecoveryInfo{Segments: len(segs)}
	for _, s := range segs {
		if err := l.scanSegment(s); err != nil {
			return err
		}
		l.recovery.Records += s.records
		if s.last > l.lastSeq {
			l.lastSeq = s.last
		}
	}
	// Drop segments recovery emptied entirely: a zero-record file has
	// nothing to replay and would pin a stale base forever.
	kept := segs[:0]
	for _, s := range segs {
		if s.records == 0 {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: removing empty segment: %w", err)
			}
			l.log.Warn("wal: removed empty segment", "file", filepath.Base(s.path))
			continue
		}
		kept = append(kept, s)
	}
	segs = kept
	if len(segs) > 0 {
		tail := segs[len(segs)-1]
		if tail.size < l.opts.SegmentBytes {
			// Reopen the tail for appending.
			f, err := os.OpenFile(tail.path, os.O_WRONLY, 0o644)
			if err != nil {
				return fmt.Errorf("wal: reopening tail: %w", err)
			}
			if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
				f.Close()
				return fmt.Errorf("wal: seeking tail: %w", err)
			}
			l.active = tail
			l.f = f
			l.w = bufio.NewWriterSize(f, 64<<10)
			segs = segs[:len(segs)-1]
		}
	}
	l.sealed = segs
	if l.recovery.TruncatedSegments > 0 {
		l.log.Warn("wal: recovery truncated corrupt frames",
			"segments_truncated", l.recovery.TruncatedSegments,
			"dropped_bytes", l.recovery.DroppedBytes,
			"dropped_records", l.recovery.DroppedRecords,
			"replayable_records", l.recovery.Records)
	}
	return nil
}

// scanSegment frame-walks one segment file, verifying CRCs, filling
// in the segment's metadata, and truncating it at the first bad
// frame. A bad frame whose length field is still plausible lets the
// scan keep walking to count the records being discarded.
func (l *Log) scanSegment(s *segment) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	fileSize := fi.Size()

	r := bufio.NewReaderSize(f, 256<<10)
	var (
		off     int64
		header  [headerSize]byte
		buf     []byte
		corrupt bool
		dropped int
	)
	for off < fileSize {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			// Partial header: torn tail.
			corrupt = true
			dropped++
			break
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		want := binary.LittleEndian.Uint32(header[4:8])
		if length < seqSize || int64(length) > MaxRecordBytes || off+headerSize+int64(length) > fileSize {
			corrupt = true
			dropped++
			break
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(r, buf); err != nil {
			corrupt = true
			dropped++
			break
		}
		if crc32.Checksum(buf, castagnoli) != want {
			// CRC failure with an intact frame: count this record and
			// keep frame-walking to count the rest being discarded.
			corrupt = true
			dropped += 1 + l.countFrames(r, fileSize-off-headerSize-int64(length))
			break
		}
		seq := binary.LittleEndian.Uint64(buf[:seqSize])
		if s.records == 0 {
			if seq != s.base {
				l.log.Warn("wal: segment first seq disagrees with filename",
					"file", filepath.Base(s.path), "name_base", s.base, "first_seq", seq)
				s.base = seq
			}
		}
		s.last = seq
		s.records++
		off += headerSize + int64(length)
	}
	s.size = off
	if corrupt || off < fileSize {
		droppedBytes := fileSize - off
		l.recovery.TruncatedSegments++
		l.recovery.DroppedBytes += droppedBytes
		l.recovery.DroppedRecords += dropped
		l.droppedBytes.Add(uint64(droppedBytes))
		l.droppedRecords.Add(uint64(dropped))
		l.log.Warn("wal: truncating segment at first bad frame",
			"file", filepath.Base(s.path), "valid_bytes", off,
			"dropped_bytes", droppedBytes, "dropped_records", dropped)
		if err := os.Truncate(s.path, off); err != nil {
			return fmt.Errorf("wal: truncating segment: %w", err)
		}
	}
	return nil
}

// countFrames walks plausible frames after a corruption point, for
// the dropped-record count only; nothing it sees is replayed.
func (l *Log) countFrames(r *bufio.Reader, remaining int64) int {
	var header [headerSize]byte
	n := 0
	for remaining >= headerSize {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			break
		}
		remaining -= headerSize
		length := int64(binary.LittleEndian.Uint32(header[0:4]))
		if length < seqSize || length > MaxRecordBytes || length > remaining {
			break
		}
		if _, err := io.CopyN(io.Discard, r, length); err != nil {
			break
		}
		remaining -= length
		n++
	}
	return n
}

// Recovery reports what Open's scan found and repaired.
func (l *Log) Recovery() RecoveryInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovery
}

// LastSeq returns the highest sequence number appended or recovered.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Append frames and writes one record. The write is buffered; it
// becomes durable at the next group commit (see Options). Sequence
// numbers must be strictly increasing — the segment index and
// retention GC depend on it.
func (l *Log) Append(seq uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq <= l.lastSeq {
		return fmt.Errorf("wal: non-monotonic seq %d (last %d)", seq, l.lastSeq)
	}
	recLen := seqSize + len(payload)
	if int64(recLen) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", recLen)
	}
	if l.active != nil && l.active.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if l.active == nil {
		if err := l.openSegmentLocked(seq); err != nil {
			return err
		}
	}

	var header [headerSize + seqSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(recLen))
	binary.LittleEndian.PutUint64(header[8:16], seq)
	crc := crc32.Checksum(header[8:16], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(header[4:8], crc)
	if _, err := l.w.Write(header[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	total := int64(headerSize + recLen)
	l.active.size += total
	l.active.last = seq
	l.active.records++
	l.lastSeq = seq
	l.pending++
	l.pendingB += total
	l.appends.Inc()
	l.appendedBytes.Add(uint64(total))

	if l.opts.SyncEveryAppend || (!l.opts.NoSync && l.pendingB >= l.opts.SyncBytes) {
		return l.commitLocked(true)
	}
	if l.opts.NoSync && l.pendingB >= l.opts.SyncBytes {
		// Even without fsync, bound the buffered (in-process) window.
		return l.commitLocked(false)
	}
	return nil
}

// Sync forces a commit of everything appended so far: buffered bytes
// are flushed and (unless NoSync) fsynced.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.commitLocked(!l.opts.NoSync)
}

// commitLocked flushes the buffered writer and optionally fsyncs.
// Caller holds l.mu.
func (l *Log) commitLocked(fsync bool) error {
	if l.w == nil || l.pending == 0 {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if fsync {
		// A group commit covers many requests' appends, so its span is
		// a root of its own, not a child of any one request's trace.
		_, span := l.tracer.StartRoot(context.Background(), "wal.fsync")
		span.SetAttrInt("records", int64(l.pending))
		span.SetAttrInt("bytes", l.pendingB)
		t0 := time.Now()
		if err := l.f.Sync(); err != nil {
			span.SetAttr("error", err.Error())
			span.End()
			return fmt.Errorf("wal: fsync: %w", err)
		}
		span.End()
		l.fsyncSeconds.ObserveSince(t0)
		l.fsyncs.Inc()
		l.batchRecords.Observe(float64(l.pending))
	}
	l.pending = 0
	l.pendingB = 0
	return nil
}

// SetTracer attaches a tracer; group-commit fsync batches are then
// recorded as "wal.fsync" root spans. Safe to call at any time; nil
// detaches.
func (l *Log) SetTracer(t *telemetry.Tracer) {
	l.mu.Lock()
	l.tracer = t
	l.mu.Unlock()
}

// Ready reports whether the log still accepts appends.
func (l *Log) Ready() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return nil
}

// syncLoop is the group-commit daemon for interval mode.
func (l *Log) syncLoop() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.commitLocked(true); err != nil {
					l.log.Error("wal: group commit failed", "error", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Rotate seals the active segment so the next append starts a fresh
// one. Retention GC can then reclaim the sealed file once every
// record in it is dead.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

// rotateLocked commits, closes, and seals the active segment.
// Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if l.active == nil {
		return nil
	}
	if err := l.commitLocked(true); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.sealed = append(l.sealed, l.active)
	l.active, l.f, l.w = nil, nil, nil
	return nil
}

// openSegmentLocked creates a fresh active segment whose filename is
// keyed by the first sequence number it will hold. Caller holds l.mu.
func (l *Log) openSegmentLocked(base uint64) error {
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.active = &segment{base: base, path: path}
	l.f = f
	l.w = bufio.NewWriterSize(f, 64<<10)
	l.segmentsCreated.Inc()
	return nil
}

// SealedSegments lists the immutable segments, ascending by base.
func (l *Log) SealedSegments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.sealed))
	for _, s := range l.sealed {
		out = append(out, SegmentInfo{Base: s.base, Last: s.last, Records: s.records, Size: s.size})
	}
	return out
}

// DeleteSealed removes one sealed segment from disk. The reason
// ("checkpoint" or "retention") is recorded in the deletion metrics;
// retention deletions are the privacy-relevant ones — expired
// observations leaving disk.
func (l *Log) DeleteSealed(base uint64, reason string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for i, s := range l.sealed {
		if s.base != base {
			continue
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: deleting segment: %w", err)
		}
		if err := syncDir(l.opts.Dir); err != nil {
			return err
		}
		l.sealed = append(l.sealed[:i], l.sealed[i+1:]...)
		if c, ok := l.segmentsDeleted[reason]; ok {
			c.Inc()
		} else {
			l.segmentsDeleted["retention"].Inc()
		}
		l.log.Info("wal: segment deleted", "base", base, "records", s.records,
			"bytes", s.size, "reason", reason)
		return nil
	}
	return fmt.Errorf("wal: no sealed segment with base %d", base)
}

// TruncateBefore deletes every sealed segment whose records are all
// at or below hwm — the checkpoint truncation path: once a snapshot
// covers a prefix of the log, replaying it is redundant. Returns how
// many segments were deleted.
func (l *Log) TruncateBefore(hwm uint64) (int, error) {
	l.mu.Lock()
	bases := make([]uint64, 0, len(l.sealed))
	for _, s := range l.sealed {
		if s.last <= hwm {
			bases = append(bases, s.base)
		}
	}
	l.mu.Unlock()
	for _, b := range bases {
		if err := l.DeleteSealed(b, "checkpoint"); err != nil {
			return 0, err
		}
	}
	return len(bases), nil
}

// Replay calls fn for every record with seq > from, in sequence
// order. Appends issued after Replay starts may or may not be seen;
// the intended use is at startup, before writes begin. The payload
// slice is reused between calls — fn must not retain it.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Commit so the tail file holds everything appended so far.
	if err := l.commitLocked(!l.opts.NoSync); err != nil {
		l.mu.Unlock()
		return err
	}
	paths := make([]string, 0, len(l.sealed)+1)
	sizes := make([]int64, 0, cap(paths))
	for _, s := range l.sealed {
		paths = append(paths, s.path)
		sizes = append(sizes, s.size)
	}
	if l.active != nil {
		paths = append(paths, l.active.path)
		sizes = append(sizes, l.active.size)
	}
	l.mu.Unlock()

	var buf []byte
	for i, path := range paths {
		if err := replayFile(path, sizes[i], from, &buf, func(seq uint64, payload []byte) error {
			l.replayedRecords.Inc()
			return fn(seq, payload)
		}); err != nil {
			return err
		}
	}
	return nil
}

// replayFile frame-walks one already-recovered segment file up to
// size (the valid prefix established by Open's scan).
func replayFile(path string, size int64, from uint64, buf *[]byte, fn func(uint64, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(io.LimitReader(f, size), 256<<10)
	var header [headerSize]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: replay %s: %w", filepath.Base(path), err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		want := binary.LittleEndian.Uint32(header[4:8])
		if int(length) > cap(*buf) {
			*buf = make([]byte, length)
		}
		b := (*buf)[:length]
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("wal: replay %s: %w", filepath.Base(path), err)
		}
		if crc32.Checksum(b, castagnoli) != want {
			// Open verified this prefix; a mismatch now means the file
			// changed underneath us.
			return fmt.Errorf("wal: replay %s: CRC mismatch mid-file", filepath.Base(path))
		}
		seq := binary.LittleEndian.Uint64(b[:seqSize])
		if seq <= from {
			continue
		}
		if err := fn(seq, b[seqSize:]); err != nil {
			return err
		}
	}
}

// Size returns the total on-disk bytes across sealed and active
// segments (valid prefixes only).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, s := range l.sealed {
		n += s.size
	}
	if l.active != nil {
		n += l.active.size
	}
	return n
}

// Close commits outstanding appends (with a final fsync, even in
// NoSync mode) and releases the tail file. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.w != nil {
		if ferr := l.w.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if serr := l.f.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.f, l.w = nil, nil
	}
	stop, done := l.stop, l.done
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// RegisterMetrics exposes the log's counters on a telemetry registry.
func (l *Log) RegisterMetrics(r *telemetry.Registry) {
	reg := func(name, help string, c *telemetry.Counter) {
		r.CounterFunc(name, help, func() float64 { return float64(c.Value()) })
	}
	reg("tippers_wal_appends_total", "Records appended to the WAL.", l.appends)
	reg("tippers_wal_appended_bytes_total", "Framed bytes appended to the WAL.", l.appendedBytes)
	reg("tippers_wal_fsyncs_total", "Group commits (fsync calls).", l.fsyncs)
	reg("tippers_wal_replayed_records_total", "Records replayed at startup.", l.replayedRecords)
	reg("tippers_wal_dropped_records_total", "Records dropped by recovery truncation.", l.droppedRecords)
	reg("tippers_wal_dropped_bytes_total", "Bytes dropped by recovery truncation.", l.droppedBytes)
	reg("tippers_wal_segments_created_total", "Segment files created.", l.segmentsCreated)
	for reason, c := range l.segmentsDeleted {
		cc := c
		r.CounterFuncWith("tippers_wal_segments_deleted_total",
			"Segment files deleted, by reason (retention deletions are expired data leaving disk).",
			telemetry.Labels{"reason": reason}, func() float64 { return float64(cc.Value()) })
	}
	r.RegisterHistogram("tippers_wal_fsync_seconds", "fsync latency.", nil, l.fsyncSeconds)
	r.RegisterHistogram("tippers_wal_batch_records", "Records per group commit.", nil, l.batchRecords)
	r.GaugeFunc("tippers_wal_segments", "Segment files on disk (sealed + active).", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		n := len(l.sealed)
		if l.active != nil {
			n++
		}
		return float64(n)
	})
	r.GaugeFunc("tippers_wal_size_bytes", "Valid bytes on disk across segments.", func() float64 {
		return float64(l.Size())
	})
}

// syncDir fsyncs a directory so segment create/delete survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: dir sync: %w", err)
	}
	return nil
}
