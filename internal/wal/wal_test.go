package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/telemetry"
)

// testOpts returns options tuned for tests: tiny segments, manual
// syncs (interval long enough to never fire on its own).
func testOpts(dir string) Options {
	return Options{
		Dir:          dir,
		SegmentBytes: 1 << 10,
		SyncInterval: time.Hour,
	}
}

func payloadFor(seq uint64) []byte {
	return []byte(fmt.Sprintf("observation-%06d", seq))
}

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := l.Append(seq, payloadFor(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

// collect replays everything after from into a seq->payload map,
// asserting order.
func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	last := from
	if err := l.Replay(from, func(seq uint64, payload []byte) error {
		if seq <= last {
			t.Fatalf("replay out of order: %d after %d", seq, last)
		}
		last = seq
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 200)
	got := collect(t, l, 0)
	if len(got) != 200 {
		t.Fatalf("replayed %d records, want 200", len(got))
	}
	for seq := uint64(1); seq <= 200; seq++ {
		if got[seq] != string(payloadFor(seq)) {
			t.Fatalf("seq %d payload %q", seq, got[seq])
		}
	}
	// Replay from a midpoint honors the high-water mark.
	if got := collect(t, l, 150); len(got) != 50 {
		t.Fatalf("replay from 150 returned %d records, want 50", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives, appends continue.
	l2, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 200 {
		t.Fatalf("recovered LastSeq = %d, want 200", l2.LastSeq())
	}
	if rep := l2.Recovery(); rep.Records != 200 || rep.DroppedBytes != 0 {
		t.Fatalf("recovery = %+v, want 200 clean records", rep)
	}
	appendN(t, l2, 201, 210)
	if got := collect(t, l2, 0); len(got) != 210 {
		t.Fatalf("after reopen+append: %d records, want 210", len(got))
	}
}

func TestAppendRejectsNonMonotonicSeq(t *testing.T) {
	l, err := Open(testOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 3)
	if err := l.Append(3, []byte("dup")); err == nil {
		t.Error("duplicate seq accepted")
	}
	if err := l.Append(2, []byte("regress")); err == nil {
		t.Error("regressing seq accepted")
	}
}

func TestRotationSealsSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 500) // ~18 KiB over 1 KiB segments
	segs := l.SealedSegments()
	if len(segs) < 5 {
		t.Fatalf("only %d sealed segments", len(segs))
	}
	// Contiguous, ascending coverage.
	for i := 1; i < len(segs); i++ {
		if segs[i].Base != segs[i-1].Last+1 {
			t.Fatalf("segment gap: %d..%d then %d", segs[i-1].Base, segs[i-1].Last, segs[i].Base)
		}
	}
	if got := collect(t, l, 0); len(got) != 500 {
		t.Fatalf("replayed %d, want 500", len(got))
	}
}

func TestDeleteSealedAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 500)
	segs := l.SealedSegments()
	hwm := segs[len(segs)/2].Last
	n, err := l.TruncateBefore(hwm)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("TruncateBefore deleted nothing")
	}
	for _, s := range l.SealedSegments() {
		if s.Last <= hwm {
			t.Fatalf("segment %d..%d survived TruncateBefore(%d)", s.Base, s.Last, hwm)
		}
	}
	// Replay from the hwm still yields every record after it.
	got := collect(t, l, hwm)
	for seq := hwm + 1; seq <= 500; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("seq %d missing after truncation", seq)
		}
	}
	// Deleting the same base twice fails cleanly.
	remaining := l.SealedSegments()
	if err := l.DeleteSealed(remaining[0].Base, "retention"); err != nil {
		t.Fatal(err)
	}
	if err := l.DeleteSealed(remaining[0].Base, "retention"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestConcurrentAppendSingleWriterPerSeq(t *testing.T) {
	// The log demands monotonic seqs, so concurrent users coordinate
	// seq assignment (obstore does it under its own lock). Simulate
	// that: a shared counter handing out seqs under a mutex.
	l, err := Open(Options{Dir: t.TempDir(), SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var (
		mu   sync.Mutex
		next uint64
		wg   sync.WaitGroup
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				mu.Lock()
				next++
				seq := next
				err := l.Append(seq, payloadFor(seq))
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, 0); len(got) != 2000 {
		t.Fatalf("replayed %d, want 2000", len(got))
	}
}

func TestSyncModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts func(dir string) Options
	}{
		{"always", func(d string) Options { return Options{Dir: d, SyncEveryAppend: true} }},
		{"none", func(d string) Options { return Options{Dir: d, NoSync: true} }},
		{"interval", func(d string) Options { return Options{Dir: d, SyncInterval: time.Millisecond} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(tc.opts(dir))
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 1, 50)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(tc.opts(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := collect(t, l2, 0); len(got) != 50 {
				t.Fatalf("replayed %d, want 50", len(got))
			}
		})
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	l, err := Open(testOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := l.Append(4, []byte("x")); err != ErrClosed {
		t.Errorf("append after close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Errorf("sync after close: %v", err)
	}
}

func TestMetricsRegistered(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 10)
	reg := telemetry.NewRegistry()
	l.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{
		"tippers_wal_appends_total 10",
		"tippers_wal_fsyncs_total 10",
		`tippers_wal_segments_deleted_total{reason="retention"}`,
		"tippers_wal_batch_records_count 10",
		"tippers_wal_segments 1",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("metrics output missing %q", w)
		}
	}
}

func TestEmptySegmentRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	// A crash can leave a created-but-empty segment file behind.
	empty := filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, 7, segSuffix))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Error("empty segment not removed")
	}
	appendN(t, l, 1, 5)
	if got := collect(t, l, 0); len(got) != 5 {
		t.Fatalf("replayed %d, want 5", len(got))
	}
}
