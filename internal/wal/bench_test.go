package wal

import "testing"

// BenchmarkWALAppend measures the append hot path per sync policy.
// "interval" is the default group-commit mode tippersd runs with; the
// gap between it and "always" is what group commit buys.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 128)
	for _, tc := range []struct {
		name string
		opts func(dir string) Options
	}{
		{"sync=interval", func(d string) Options {
			return Options{Dir: d, SyncInterval: DefaultSyncInterval}
		}},
		{"sync=none", func(d string) Options {
			return Options{Dir: d, NoSync: true}
		}},
		{"sync=always", func(d string) Options {
			return Options{Dir: d, SyncEveryAppend: true}
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			l, err := Open(tc.opts(b.TempDir()))
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(headerSize + seqSize + len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(uint64(i+1), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
