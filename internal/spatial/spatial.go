// Package spatial implements the paper's spatial model (§IV.A.1): a
// hierarchy of spaces — buildings, floors, rooms, corridors, zones —
// with the three operators the paper names: contained, neighboring,
// and overlap.
//
// Spaces form a forest. Each space optionally carries a 2-D extent
// (axis-aligned rectangle in building-local meters) used by the
// neighboring and overlap operators; containment is structural (the
// tree), which matches how building information models express it.
//
// The model also defines the location-granularity ladder used by the
// privacy mechanisms: an exact point degrades to Room, Floor,
// Building, and finally to nothing. Figure 4 of the paper exposes
// exactly this choice ("fine grained" / "coarse grained" / "no
// location sensing") to users.
package spatial

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a space in the hierarchy.
type Kind int

// Space kinds, from coarsest to finest. Values start at 1 so the zero
// value is invalid and cannot be mistaken for a real kind.
const (
	KindCampus Kind = iota + 1
	KindBuilding
	KindFloor
	KindRoom
	KindCorridor
	KindZone // sub-room region, e.g. a desk cluster or camera field of view
)

var kindNames = map[Kind]string{
	KindCampus:   "Campus",
	KindBuilding: "Building",
	KindFloor:    "Floor",
	KindRoom:     "Room",
	KindCorridor: "Corridor",
	KindZone:     "Zone",
}

// String returns the capitalized kind name used in policy documents
// (the paper's Figure 2 uses "type": "Building").
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a policy-document type string to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("spatial: unknown space type %q", s)
}

// Rect is an axis-aligned rectangle in building-local meters.
// Min is inclusive, Max is exclusive.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Valid reports whether the rectangle is non-degenerate.
func (r Rect) Valid() bool { return r.MaxX > r.MinX && r.MaxY > r.MinY }

// IsZero reports whether the rectangle is unset.
func (r Rect) IsZero() bool { return r == Rect{} }

// Overlaps reports whether two rectangles share interior area.
func (r Rect) Overlaps(o Rect) bool {
	return r.MinX < o.MaxX && o.MinX < r.MaxX && r.MinY < o.MaxY && o.MinY < r.MaxY
}

// Touches reports whether two rectangles share a boundary or overlap.
func (r Rect) Touches(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether o lies entirely within r.
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && r.MinY <= o.MinY && o.MaxX <= r.MaxX && o.MaxY <= r.MaxY
}

// ContainsPoint reports whether the point (x, y) lies inside r.
func (r Rect) ContainsPoint(x, y float64) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// Area returns the rectangle's area in square meters.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Space is one node in the spatial hierarchy.
type Space struct {
	ID     string // unique within a Model, e.g. "dbh/2/2065"
	Name   string // human-readable, e.g. "Room 2065"
	Kind   Kind
	Floor  int  // floor number for floor-and-below spaces
	Extent Rect // optional footprint; zero means unknown

	parent   *Space
	children []*Space
}

// Parent returns the enclosing space, or nil for a root.
func (s *Space) Parent() *Space { return s.parent }

// Children returns the directly contained spaces. The returned slice
// is a copy; mutating it does not affect the model.
func (s *Space) Children() []*Space {
	out := make([]*Space, len(s.children))
	copy(out, s.children)
	return out
}

// Ancestors returns the chain from s's parent up to its root,
// nearest first.
func (s *Space) Ancestors() []*Space {
	var out []*Space
	for p := s.parent; p != nil; p = p.parent {
		out = append(out, p)
	}
	return out
}

// Root returns the top of s's tree (s itself if it is a root).
func (s *Space) Root() *Space {
	cur := s
	for cur.parent != nil {
		cur = cur.parent
	}
	return cur
}

// AncestorOfKind walks upward (starting at s itself) and returns the
// first space of the given kind, or nil. It implements granularity
// coarsening: AncestorOfKind(KindFloor) of a room is its floor.
func (s *Space) AncestorOfKind(k Kind) *Space {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.Kind == k {
			return cur
		}
	}
	return nil
}

// Model is a registry of spaces supporting the paper's three spatial
// operators. A Model is safe for concurrent use.
type Model struct {
	mu     sync.RWMutex
	byID   map[string]*Space
	roots  []*Space
	frozen bool
}

// NewModel returns an empty spatial model.
func NewModel() *Model {
	return &Model{byID: make(map[string]*Space)}
}

// Errors returned by Model operations.
var (
	ErrDuplicateID  = errors.New("spatial: duplicate space ID")
	ErrUnknownSpace = errors.New("spatial: unknown space")
	ErrFrozen       = errors.New("spatial: model is frozen")
)

// Add inserts a space under the parent with the given ID. An empty
// parentID adds a root (e.g. a campus or a standalone building).
// The inserted space is returned.
func (m *Model) Add(parentID string, s Space) (*Space, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen {
		return nil, ErrFrozen
	}
	if s.ID == "" {
		return nil, errors.New("spatial: space ID must be non-empty")
	}
	if s.Kind < KindCampus || s.Kind > KindZone {
		return nil, fmt.Errorf("spatial: space %q has invalid kind %d", s.ID, s.Kind)
	}
	if _, exists := m.byID[s.ID]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, s.ID)
	}
	node := s
	node.parent = nil
	node.children = nil
	if parentID != "" {
		p, ok := m.byID[parentID]
		if !ok {
			return nil, fmt.Errorf("%w: parent %q", ErrUnknownSpace, parentID)
		}
		node.parent = p
		p.children = append(p.children, &node)
	} else {
		m.roots = append(m.roots, &node)
	}
	m.byID[node.ID] = &node
	return &node, nil
}

// MustAdd is Add for model construction in tests and generators;
// it panics on error.
func (m *Model) MustAdd(parentID string, s Space) *Space {
	sp, err := m.Add(parentID, s)
	if err != nil {
		panic(err)
	}
	return sp
}

// Freeze makes the model immutable. A frozen model can be shared
// across goroutines without further locking concerns on the write
// path; Add returns ErrFrozen afterwards.
func (m *Model) Freeze() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frozen = true
}

// Lookup returns the space with the given ID.
func (m *Model) Lookup(id string) (*Space, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.byID[id]
	return s, ok
}

// Len returns the number of spaces in the model.
func (m *Model) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byID)
}

// Roots returns the model's root spaces.
func (m *Model) Roots() []*Space {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Space, len(m.roots))
	copy(out, m.roots)
	return out
}

// All returns every space, sorted by ID for deterministic iteration.
func (m *Model) All() []*Space {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Space, 0, len(m.byID))
	for _, s := range m.byID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Contained reports whether inner is inside outer (or is outer):
// the paper's "contained" operator. Containment is structural.
func (m *Model) Contained(innerID, outerID string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	inner, ok := m.byID[innerID]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownSpace, innerID)
	}
	if _, ok := m.byID[outerID]; !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownSpace, outerID)
	}
	for cur := inner; cur != nil; cur = cur.parent {
		if cur.ID == outerID {
			return true, nil
		}
	}
	return false, nil
}

// Neighboring reports whether two distinct spaces share a parent, or
// have touching extents on the same floor: the paper's "neighboring"
// operator.
func (m *Model) Neighboring(aID, bID string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	a, ok := m.byID[aID]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownSpace, aID)
	}
	b, ok := m.byID[bID]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownSpace, bID)
	}
	if a.ID == b.ID {
		return false, nil
	}
	if a.parent != nil && b.parent != nil && a.parent.ID == b.parent.ID {
		return true, nil
	}
	if !a.Extent.IsZero() && !b.Extent.IsZero() && a.Floor == b.Floor {
		return a.Extent.Touches(b.Extent), nil
	}
	return false, nil
}

// Overlap reports whether two spaces share area: the paper's
// "overlap" operator. Structural containment counts as overlap;
// otherwise extents on the same floor are compared.
func (m *Model) Overlap(aID, bID string) (bool, error) {
	if in, err := m.Contained(aID, bID); err != nil || in {
		return in, err
	}
	if in, err := m.Contained(bID, aID); err != nil || in {
		return in, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	a := m.byID[aID]
	b := m.byID[bID]
	if !a.Extent.IsZero() && !b.Extent.IsZero() && a.Floor == b.Floor {
		return a.Extent.Overlaps(b.Extent), nil
	}
	return false, nil
}

// Subtree returns the IDs of every space contained in rootID,
// including rootID itself, in depth-first order. The enforcement
// engine uses it to expand a policy scoped to a floor into the set of
// rooms it covers.
func (m *Model) Subtree(rootID string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	root, ok := m.byID[rootID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSpace, rootID)
	}
	var out []string
	var walk func(*Space)
	walk = func(s *Space) {
		out = append(out, s.ID)
		for _, c := range s.children {
			walk(c)
		}
	}
	walk(root)
	return out, nil
}

// Locate returns the finest space whose extent contains the point on
// the given floor of the subtree rooted at rootID. It returns nil if
// no space contains the point. The simulator uses it to turn occupant
// coordinates into room-level locations.
func (m *Model) Locate(rootID string, floor int, x, y float64) *Space {
	m.mu.RLock()
	defer m.mu.RUnlock()
	root, ok := m.byID[rootID]
	if !ok {
		return nil
	}
	var best *Space
	var walk func(*Space)
	walk = func(s *Space) {
		match := !s.Extent.IsZero() && s.Floor == floor && s.Extent.ContainsPoint(x, y)
		if s.Kind <= KindBuilding {
			// Buildings and campuses span all floors.
			match = !s.Extent.IsZero() && s.Extent.ContainsPoint(x, y)
		}
		if match {
			if best == nil || s.Kind > best.Kind {
				best = s
			}
			for _, c := range s.children {
				walk(c)
			}
			return
		}
		// Spaces without extents are transparent: recurse anyway.
		if s.Extent.IsZero() {
			for _, c := range s.children {
				walk(c)
			}
		}
	}
	walk(root)
	return best
}

// CommonAncestor returns the nearest space containing both a and b,
// or nil if they are in different trees.
func (m *Model) CommonAncestor(aID, bID string) *Space {
	m.mu.RLock()
	defer m.mu.RUnlock()
	a, ok := m.byID[aID]
	if !ok {
		return nil
	}
	b, ok := m.byID[bID]
	if !ok {
		return nil
	}
	seen := map[string]*Space{}
	for cur := a; cur != nil; cur = cur.parent {
		seen[cur.ID] = cur
	}
	for cur := b; cur != nil; cur = cur.parent {
		if s, ok := seen[cur.ID]; ok {
			return s
		}
	}
	return nil
}
