package spatial

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// buildDBHFragment builds a small two-floor fragment of Donald Bren
// Hall used across the tests.
func buildDBHFragment(t testing.TB) *Model {
	t.Helper()
	m := NewModel()
	m.MustAdd("", Space{ID: "uci", Name: "UC Irvine", Kind: KindCampus})
	m.MustAdd("uci", Space{ID: "dbh", Name: "Donald Bren Hall", Kind: KindBuilding, Extent: Rect{0, 0, 100, 60}})
	m.MustAdd("dbh", Space{ID: "dbh/1", Name: "Floor 1", Kind: KindFloor, Floor: 1, Extent: Rect{0, 0, 100, 60}})
	m.MustAdd("dbh", Space{ID: "dbh/2", Name: "Floor 2", Kind: KindFloor, Floor: 2, Extent: Rect{0, 0, 100, 60}})
	m.MustAdd("dbh/1", Space{ID: "dbh/1/1100", Name: "Room 1100", Kind: KindRoom, Floor: 1, Extent: Rect{0, 0, 10, 10}})
	m.MustAdd("dbh/1", Space{ID: "dbh/1/1110", Name: "Room 1110", Kind: KindRoom, Floor: 1, Extent: Rect{10, 0, 20, 10}})
	m.MustAdd("dbh/1", Space{ID: "dbh/1/corr", Name: "Corridor 1", Kind: KindCorridor, Floor: 1, Extent: Rect{0, 10, 100, 14}})
	m.MustAdd("dbh/2", Space{ID: "dbh/2/2065", Name: "Room 2065", Kind: KindRoom, Floor: 2, Extent: Rect{0, 0, 10, 10}})
	m.MustAdd("dbh/2/2065", Space{ID: "dbh/2/2065/desk", Name: "Desk zone", Kind: KindZone, Floor: 2, Extent: Rect{1, 1, 4, 4}})
	return m
}

func TestAddErrors(t *testing.T) {
	m := NewModel()
	if _, err := m.Add("", Space{ID: "", Kind: KindRoom}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := m.Add("", Space{ID: "x"}); err == nil {
		t.Error("zero Kind accepted")
	}
	if _, err := m.Add("nope", Space{ID: "x", Kind: KindRoom}); !errors.Is(err, ErrUnknownSpace) {
		t.Errorf("unknown parent: got %v, want ErrUnknownSpace", err)
	}
	m.MustAdd("", Space{ID: "b", Kind: KindBuilding})
	if _, err := m.Add("", Space{ID: "b", Kind: KindBuilding}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate: got %v, want ErrDuplicateID", err)
	}
	m.Freeze()
	if _, err := m.Add("", Space{ID: "c", Kind: KindBuilding}); !errors.Is(err, ErrFrozen) {
		t.Errorf("frozen: got %v, want ErrFrozen", err)
	}
}

func TestContained(t *testing.T) {
	m := buildDBHFragment(t)
	tests := []struct {
		inner, outer string
		want         bool
	}{
		{"dbh/1/1100", "dbh/1", true},
		{"dbh/1/1100", "dbh", true},
		{"dbh/1/1100", "uci", true},
		{"dbh/1/1100", "dbh/1/1100", true}, // reflexive
		{"dbh/1", "dbh/1/1100", false},     // not symmetric
		{"dbh/1/1100", "dbh/2", false},
		{"dbh/2/2065/desk", "dbh/2", true},
	}
	for _, tt := range tests {
		got, err := m.Contained(tt.inner, tt.outer)
		if err != nil {
			t.Fatalf("Contained(%s,%s): %v", tt.inner, tt.outer, err)
		}
		if got != tt.want {
			t.Errorf("Contained(%s,%s) = %v, want %v", tt.inner, tt.outer, got, tt.want)
		}
	}
	if _, err := m.Contained("ghost", "dbh"); !errors.Is(err, ErrUnknownSpace) {
		t.Errorf("unknown inner: got %v", err)
	}
	if _, err := m.Contained("dbh", "ghost"); !errors.Is(err, ErrUnknownSpace) {
		t.Errorf("unknown outer: got %v", err)
	}
}

func TestNeighboring(t *testing.T) {
	m := buildDBHFragment(t)
	tests := []struct {
		a, b string
		want bool
	}{
		{"dbh/1/1100", "dbh/1/1110", true}, // siblings sharing a wall
		{"dbh/1/1100", "dbh/1/corr", true}, // sibling via shared parent
		{"dbh/1", "dbh/2", true},           // sibling floors
		{"dbh/1/1100", "dbh/2/2065", false},
		{"dbh/1/1100", "dbh/1/1100", false}, // irreflexive
	}
	for _, tt := range tests {
		got, err := m.Neighboring(tt.a, tt.b)
		if err != nil {
			t.Fatalf("Neighboring(%s,%s): %v", tt.a, tt.b, err)
		}
		if got != tt.want {
			t.Errorf("Neighboring(%s,%s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		// Symmetric.
		rev, _ := m.Neighboring(tt.b, tt.a)
		if rev != got {
			t.Errorf("Neighboring not symmetric for (%s,%s)", tt.a, tt.b)
		}
	}
}

func TestOverlap(t *testing.T) {
	m := buildDBHFragment(t)
	// Containment implies overlap.
	for _, pair := range [][2]string{{"dbh/1/1100", "dbh/1"}, {"dbh", "dbh/2/2065/desk"}} {
		got, err := m.Overlap(pair[0], pair[1])
		if err != nil || !got {
			t.Errorf("Overlap(%s,%s) = %v,%v, want true", pair[0], pair[1], got, err)
		}
	}
	// Disjoint rooms do not overlap (they only touch at the boundary).
	got, err := m.Overlap("dbh/1/1100", "dbh/1/1110")
	if err != nil || got {
		t.Errorf("Overlap(adjacent rooms) = %v,%v, want false", got, err)
	}
	// A camera zone overlapping two rooms: add a zone straddling both.
	m2 := buildDBHFragment(t)
	m2.MustAdd("dbh/1", Space{ID: "dbh/1/camzone", Kind: KindZone, Floor: 1, Extent: Rect{8, 0, 12, 10}})
	for _, room := range []string{"dbh/1/1100", "dbh/1/1110"} {
		got, err := m2.Overlap("dbh/1/camzone", room)
		if err != nil || !got {
			t.Errorf("Overlap(camzone,%s) = %v,%v, want true", room, got, err)
		}
	}
}

func TestSubtree(t *testing.T) {
	m := buildDBHFragment(t)
	ids, err := m.Subtree("dbh/1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"dbh/1": true, "dbh/1/1100": true, "dbh/1/1110": true, "dbh/1/corr": true}
	if len(ids) != len(want) {
		t.Fatalf("Subtree(dbh/1) = %v, want %v", ids, want)
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected subtree member %q", id)
		}
	}
	if _, err := m.Subtree("ghost"); !errors.Is(err, ErrUnknownSpace) {
		t.Errorf("Subtree(ghost) error = %v", err)
	}
}

func TestAncestorOfKindAndRoot(t *testing.T) {
	m := buildDBHFragment(t)
	desk, _ := m.Lookup("dbh/2/2065/desk")
	if got := desk.AncestorOfKind(KindRoom); got == nil || got.ID != "dbh/2/2065" {
		t.Errorf("AncestorOfKind(Room) = %v", got)
	}
	if got := desk.AncestorOfKind(KindFloor); got == nil || got.ID != "dbh/2" {
		t.Errorf("AncestorOfKind(Floor) = %v", got)
	}
	if got := desk.AncestorOfKind(KindBuilding); got == nil || got.ID != "dbh" {
		t.Errorf("AncestorOfKind(Building) = %v", got)
	}
	if got := desk.Root(); got.ID != "uci" {
		t.Errorf("Root() = %v, want uci", got.ID)
	}
	if got := desk.AncestorOfKind(KindCorridor); got != nil {
		t.Errorf("AncestorOfKind(Corridor) = %v, want nil", got)
	}
	if n := len(desk.Ancestors()); n != 4 {
		t.Errorf("len(Ancestors) = %d, want 4", n)
	}
}

func TestLocate(t *testing.T) {
	m := buildDBHFragment(t)
	tests := []struct {
		floor int
		x, y  float64
		want  string
	}{
		{1, 5, 5, "dbh/1/1100"},
		{1, 15, 5, "dbh/1/1110"},
		{1, 50, 12, "dbh/1/corr"},
		{2, 2, 2, "dbh/2/2065/desk"},
		{2, 8, 8, "dbh/2/2065"},
		{1, 50, 50, "dbh/1"}, // inside floor but no room
	}
	for _, tt := range tests {
		got := m.Locate("dbh", tt.floor, tt.x, tt.y)
		if got == nil || got.ID != tt.want {
			t.Errorf("Locate(floor %d, %v,%v) = %v, want %s", tt.floor, tt.x, tt.y, got, tt.want)
		}
	}
	if got := m.Locate("dbh", 1, 500, 500); got != nil {
		t.Errorf("Locate(outside) = %v, want nil", got)
	}
	if got := m.Locate("ghost", 1, 5, 5); got != nil {
		t.Errorf("Locate(unknown root) = %v, want nil", got)
	}
}

func TestCommonAncestor(t *testing.T) {
	m := buildDBHFragment(t)
	if got := m.CommonAncestor("dbh/1/1100", "dbh/1/1110"); got == nil || got.ID != "dbh/1" {
		t.Errorf("CommonAncestor(rooms same floor) = %v, want dbh/1", got)
	}
	if got := m.CommonAncestor("dbh/1/1100", "dbh/2/2065"); got == nil || got.ID != "dbh" {
		t.Errorf("CommonAncestor(rooms cross floor) = %v, want dbh", got)
	}
	if got := m.CommonAncestor("dbh/1/1100", "dbh/1/1100"); got == nil || got.ID != "dbh/1/1100" {
		t.Errorf("CommonAncestor(self) = %v", got)
	}
	if got := m.CommonAncestor("ghost", "dbh"); got != nil {
		t.Errorf("CommonAncestor(ghost) = %v, want nil", got)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := KindCampus; k <= KindZone; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("Planet"); err == nil {
		t.Error("ParseKind(Planet) succeeded")
	}
	if s := Kind(99).String(); s != "Kind(99)" {
		t.Errorf("Kind(99).String() = %q", s)
	}
}

func TestRectOperators(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	c := Rect{10, 0, 20, 10}
	d := Rect{30, 30, 40, 40}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a/b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a/c share only an edge: no overlap")
	}
	if !a.Touches(c) {
		t.Error("a/c share an edge: touches")
	}
	if a.Touches(d) {
		t.Error("a/d are disjoint")
	}
	if !a.Contains(Rect{2, 2, 8, 8}) || a.Contains(b) {
		t.Error("Contains misbehaves")
	}
	if !a.ContainsPoint(0, 0) || a.ContainsPoint(10, 10) {
		t.Error("ContainsPoint half-open semantics violated")
	}
	if got := a.Area(); got != 100 {
		t.Errorf("Area = %v, want 100", got)
	}
	if got := (Rect{5, 5, 1, 1}).Area(); got != 0 {
		t.Errorf("degenerate Area = %v, want 0", got)
	}
}

// TestContainmentPartialOrder property-checks that structural
// containment is a partial order on a randomly generated tree:
// reflexive, antisymmetric, transitive.
func TestContainmentPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m := NewModel()
	m.MustAdd("", Space{ID: "n0", Kind: KindCampus})
	ids := []string{"n0"}
	kinds := []Kind{KindBuilding, KindFloor, KindRoom, KindZone}
	for i := 1; i < 60; i++ {
		parent := ids[r.Intn(len(ids))]
		id := fmt.Sprintf("n%d", i)
		m.MustAdd(parent, Space{ID: id, Kind: kinds[r.Intn(len(kinds))]})
		ids = append(ids, id)
	}
	in := func(a, b string) bool {
		ok, err := m.Contained(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	for trial := 0; trial < 2000; trial++ {
		a := ids[r.Intn(len(ids))]
		b := ids[r.Intn(len(ids))]
		c := ids[r.Intn(len(ids))]
		if !in(a, a) {
			t.Fatalf("containment not reflexive at %s", a)
		}
		if a != b && in(a, b) && in(b, a) {
			t.Fatalf("containment not antisymmetric: %s, %s", a, b)
		}
		if in(a, b) && in(b, c) && !in(a, c) {
			t.Fatalf("containment not transitive: %s⊆%s⊆%s", a, b, c)
		}
	}
}

// TestLocateConsistentWithContainment: the located space's ancestors
// must all structurally contain it.
func TestLocateConsistentWithContainment(t *testing.T) {
	m := buildDBHFragment(t)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		floor := 1 + r.Intn(2)
		x, y := r.Float64()*100, r.Float64()*60
		s := m.Locate("dbh", floor, x, y)
		if s == nil {
			continue
		}
		for _, anc := range s.Ancestors() {
			ok, err := m.Contained(s.ID, anc.ID)
			if err != nil || !ok {
				t.Fatalf("Locate result %s not contained in ancestor %s", s.ID, anc.ID)
			}
		}
	}
}

func TestAllSortedAndLen(t *testing.T) {
	m := buildDBHFragment(t)
	all := m.All()
	if len(all) != m.Len() {
		t.Fatalf("All()=%d, Len()=%d", len(all), m.Len())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted: %s >= %s", all[i-1].ID, all[i].ID)
		}
	}
	if len(m.Roots()) != 1 || m.Roots()[0].ID != "uci" {
		t.Errorf("Roots() = %v", m.Roots())
	}
}

func TestChildrenIsCopy(t *testing.T) {
	m := buildDBHFragment(t)
	floor, _ := m.Lookup("dbh/1")
	kids := floor.Children()
	if len(kids) != 3 {
		t.Fatalf("Children = %d, want 3", len(kids))
	}
	kids[0] = nil
	if floor.Children()[0] == nil {
		t.Error("Children() exposed internal slice")
	}
}
