package colstore

// FuzzSegmentDecode: the segment decoder must be total — arbitrary
// bytes either decode into a structurally valid segment or return an
// error, never panic, never over-allocate, and a successful decode
// must re-encode to the identical bytes (the codec has one canonical
// form, which is what makes the CRC trailer meaningful).

import (
	"bytes"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/sensor"
)

func fuzzSeedSegments() [][]byte {
	base := time.Date(2026, 3, 14, 11, 0, 0, 0, time.UTC)
	mk := func(rows []sensor.Observation) []byte {
		sg, err := buildSegment(1, base, rows)
		if err != nil {
			panic(err)
		}
		return sg.encode()
	}
	one := mk([]sensor.Observation{{
		Seq: 1, SensorID: "ap-1", Kind: sensor.ObsWiFiConnect,
		Time: base.Add(time.Second), SpaceID: "s1", UserID: "u1", Value: 3.5,
	}})
	var many []sensor.Observation
	for i := 0; i < 64; i++ {
		o := sensor.Observation{
			Seq: uint64(10 + i*3), SensorID: "ap-2", Kind: sensor.ObsPowerReading,
			Time: base.Add(time.Duration(i) * 900 * time.Millisecond), SpaceID: "s2",
			Value: float64(i) * 0.25,
		}
		if i%5 == 0 {
			o.UserID = "u9"
			o.DeviceMAC = "de:ad:be:ef"
			o.Payload = map[string]string{"unit": "W"}
		}
		many = append(many, o)
	}
	return [][]byte{one, mk(many), []byte(segMagic), nil}
}

func FuzzSegmentDecode(f *testing.F) {
	for _, seed := range fuzzSeedSegments() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sg, err := decodeSegment(1, data)
		if err != nil {
			return
		}
		// A valid decode must be internally consistent and re-encode
		// canonically.
		n := sg.rows()
		if n == 0 {
			t.Fatal("decode produced an empty segment")
		}
		var prev uint64
		for i := 0; i < n; i++ {
			o := sg.row(i) // must not panic: every index in range
			if i > 0 && o.Seq <= prev {
				t.Fatalf("row %d out of seq order", i)
			}
			prev = o.Seq
		}
		if sg.minSeq != sg.seqs[0] || sg.maxSeq != sg.seqs[n-1] {
			t.Fatal("zone map seq bounds inconsistent")
		}
		if !bytes.Equal(sg.encode(), data) {
			t.Fatal("accepted non-canonical encoding")
		}
	})
}
