package colstore

// Incremental rollup cubes: occupancy per (space, kind, subject) per
// minute and readings per (sensor, kind, space, subject) per hour.
// Entries are keyed by the ground-truth subject and carry raw counts,
// sums, and extrema — never an enforced or anonymized view — so a
// reader re-applies the requester's decisions entry by entry at read
// time, and a mid-session preference change simply changes how the
// same stored entries are released. Each entry also tracks the
// minimum contributing seq, which lets the query layer reproduce the
// row executor's first-seen group order exactly.
//
// The cubes are fed synchronously from the row store's listener (so
// they can never lag ingest) and repair themselves after deletions by
// marking the touched time buckets dirty and rebuilding them from the
// unified tombstone-filtered scan on next read.

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

type occKey struct {
	space string
	kind  sensor.ObservationKind
	user  string
}

type occEntry struct {
	count  int
	minSeq uint64
}

type rdKey struct {
	sensor string
	kind   sensor.ObservationKind
	space  string
	user   string
}

type rdEntry struct {
	count    int
	sum      float64
	min, max float64
	minSeq   uint64
}

// OccEntry is one released-to-the-reader occupancy cube cell: a
// minute bucket's raw observation count for one ground-truth
// (space, kind, subject) combination.
type OccEntry struct {
	Minute  time.Time
	SpaceID string
	Kind    sensor.ObservationKind
	UserID  string
	Count   int
	MinSeq  uint64
}

// ReadingEntry is one readings cube cell: an hour bucket's aggregate
// for one ground-truth (sensor, kind, space, subject) combination.
type ReadingEntry struct {
	Hour     time.Time
	SensorID string
	Kind     sensor.ObservationKind
	SpaceID  string
	UserID   string
	Count    int
	Sum      float64
	Min, Max float64
	MinSeq   uint64
}

type rollups struct {
	store *Store

	mu         sync.Mutex
	disabled   bool
	forcedOff  bool
	maxEntries int
	entries    int
	occ        map[int64]map[occKey]*occEntry // minute start, unix nanos
	rd         map[int64]map[rdKey]*rdEntry   // hour start, unix nanos
	dirtyOcc   map[int64]struct{}
	dirtyRd    map[int64]struct{}

	version atomic.Uint64
}

func newRollups(store *Store, maxEntries int, forcedOff bool) *rollups {
	return &rollups{
		store:      store,
		forcedOff:  forcedOff,
		disabled:   forcedOff,
		maxEntries: maxEntries,
		occ:        make(map[int64]map[occKey]*occEntry),
		rd:         make(map[int64]map[rdKey]*rdEntry),
		dirtyOcc:   make(map[int64]struct{}),
		dirtyRd:    make(map[int64]struct{}),
	}
}

func (r *rollups) isDisabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.disabled
}

func (r *rollups) entryCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries
}

// observe folds one appended observation into both cubes.
func (r *rollups) observe(o sensor.Observation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled {
		return
	}
	r.observeLocked(o)
	r.version.Add(1)
	r.checkCapLocked()
}

func (r *rollups) observeLocked(o sensor.Observation) {
	minute := o.Time.Truncate(time.Minute).UnixNano()
	om := r.occ[minute]
	if om == nil {
		om = make(map[occKey]*occEntry)
		r.occ[minute] = om
	}
	ok := occKey{space: o.SpaceID, kind: o.Kind, user: o.UserID}
	oe := om[ok]
	if oe == nil {
		oe = &occEntry{minSeq: o.Seq}
		om[ok] = oe
		r.entries++
	}
	oe.count++
	if o.Seq < oe.minSeq {
		oe.minSeq = o.Seq
	}

	hour := o.Time.Truncate(time.Hour).UnixNano()
	hm := r.rd[hour]
	if hm == nil {
		hm = make(map[rdKey]*rdEntry)
		r.rd[hour] = hm
	}
	rk := rdKey{sensor: o.SensorID, kind: o.Kind, space: o.SpaceID, user: o.UserID}
	re := hm[rk]
	if re == nil {
		re = &rdEntry{min: o.Value, max: o.Value, minSeq: o.Seq}
		hm[rk] = re
		r.entries++
	} else {
		if o.Value < re.min {
			re.min = o.Value
		}
		if o.Value > re.max {
			re.max = o.Value
		}
		if o.Seq < re.minSeq {
			re.minSeq = o.Seq
		}
	}
	re.count++
	re.sum += o.Value
}

func (r *rollups) checkCapLocked() {
	if r.entries > r.maxEntries {
		// The cube outgrew its budget: shut it down and let readers
		// fall back to scans rather than serve partial aggregates.
		r.disabled = true
		r.occ = map[int64]map[occKey]*occEntry{}
		r.rd = map[int64]map[rdKey]*rdEntry{}
		r.dirtyOcc = map[int64]struct{}{}
		r.dirtyRd = map[int64]struct{}{}
		r.entries = 0
		r.version.Add(1)
	}
}

// deleted marks every time bucket a deletion touched as dirty; the
// next read rebuilds those buckets from the unified scan, which no
// longer contains the rows.
func (r *rollups) deleted(dels []obstore.Deletion) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled {
		return
	}
	for _, d := range dels {
		r.dirtyOcc[d.Time.Truncate(time.Minute).UnixNano()] = struct{}{}
		r.dirtyRd[d.Time.Truncate(time.Hour).UnixNano()] = struct{}{}
	}
	r.version.Add(1)
}

// rebuildAll recomputes both cubes from the unified scan. Used when
// the tier first attaches to a store that already holds data.
func (r *rollups) rebuildAll() {
	rows := r.store.Query(obstore.Filter{})
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.forcedOff {
		return
	}
	r.occ = make(map[int64]map[occKey]*occEntry)
	r.rd = make(map[int64]map[rdKey]*rdEntry)
	r.dirtyOcc = make(map[int64]struct{})
	r.dirtyRd = make(map[int64]struct{})
	r.entries = 0
	r.disabled = false
	for _, o := range rows {
		r.observeLocked(o)
	}
	r.version.Add(1)
	r.checkCapLocked()
}

// repairLocked rebuilds every dirty bucket from the unified scan.
// Caller holds r.mu; the store query takes only store locks, so the
// ordering rollups.mu -> store.mu is safe (the reverse never occurs).
func (r *rollups) repairLocked() {
	if len(r.dirtyOcc) == 0 && len(r.dirtyRd) == 0 {
		// No repair, no version bump: reads must leave the version
		// untouched or downstream answer caches could never validate.
		return
	}
	for minute := range r.dirtyOcc {
		start := time.Unix(0, minute)
		rows := r.store.Query(obstore.Filter{From: start, To: start.Add(time.Minute)})
		r.entries -= len(r.occ[minute])
		delete(r.occ, minute)
		for _, o := range rows {
			r.observeOccLocked(o, minute)
		}
		delete(r.dirtyOcc, minute)
	}
	for hour := range r.dirtyRd {
		start := time.Unix(0, hour)
		rows := r.store.Query(obstore.Filter{From: start, To: start.Add(time.Hour)})
		r.entries -= len(r.rd[hour])
		delete(r.rd, hour)
		for _, o := range rows {
			r.observeRdLocked(o, hour)
		}
		delete(r.dirtyRd, hour)
	}
	r.version.Add(1)
	r.checkCapLocked()
}

func (r *rollups) observeOccLocked(o sensor.Observation, minute int64) {
	om := r.occ[minute]
	if om == nil {
		om = make(map[occKey]*occEntry)
		r.occ[minute] = om
	}
	k := occKey{space: o.SpaceID, kind: o.Kind, user: o.UserID}
	e := om[k]
	if e == nil {
		e = &occEntry{minSeq: o.Seq}
		om[k] = e
		r.entries++
	}
	e.count++
	if o.Seq < e.minSeq {
		e.minSeq = o.Seq
	}
}

func (r *rollups) observeRdLocked(o sensor.Observation, hour int64) {
	hm := r.rd[hour]
	if hm == nil {
		hm = make(map[rdKey]*rdEntry)
		r.rd[hour] = hm
	}
	k := rdKey{sensor: o.SensorID, kind: o.Kind, space: o.SpaceID, user: o.UserID}
	e := hm[k]
	if e == nil {
		e = &rdEntry{min: o.Value, max: o.Value, minSeq: o.Seq}
		hm[k] = e
		r.entries++
	} else {
		if o.Value < e.min {
			e.min = o.Value
		}
		if o.Value > e.max {
			e.max = o.Value
		}
		if o.Seq < e.minSeq {
			e.minSeq = o.Seq
		}
	}
	e.count++
	e.sum += o.Value
}

// OccupancyRollup returns the minute cube's entries whose bucket
// start lies in [from, to); zero times mean unbounded. ok=false means
// the cubes are unavailable and the caller must fall back to a scan.
// The returned version pairs with Epoch for answer-cache validation.
func (s *Store) OccupancyRollup(from, to time.Time) (entries []OccEntry, version uint64, ok bool) {
	r := s.roll
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled || s.srcAttached() == nil {
		return nil, 0, false
	}
	r.repairLocked()
	if r.disabled {
		return nil, 0, false
	}
	var fromN, toN int64
	if !from.IsZero() {
		fromN = from.UnixNano()
	}
	if !to.IsZero() {
		toN = to.UnixNano()
	}
	for minute, om := range r.occ {
		if !from.IsZero() && minute < fromN {
			continue
		}
		if !to.IsZero() && minute >= toN {
			continue
		}
		mt := time.Unix(0, minute).UTC()
		for k, e := range om {
			entries = append(entries, OccEntry{
				Minute: mt, SpaceID: k.space, Kind: k.kind, UserID: k.user,
				Count: e.count, MinSeq: e.minSeq,
			})
		}
	}
	return entries, r.version.Load(), true
}

// ReadingsRollup returns the hour cube's entries whose bucket start
// lies in [from, to); zero times mean unbounded.
func (s *Store) ReadingsRollup(from, to time.Time) (entries []ReadingEntry, version uint64, ok bool) {
	r := s.roll
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled || s.srcAttached() == nil {
		return nil, 0, false
	}
	r.repairLocked()
	if r.disabled {
		return nil, 0, false
	}
	var fromN, toN int64
	if !from.IsZero() {
		fromN = from.UnixNano()
	}
	if !to.IsZero() {
		toN = to.UnixNano()
	}
	for hour, hm := range r.rd {
		if !from.IsZero() && hour < fromN {
			continue
		}
		if !to.IsZero() && hour >= toN {
			continue
		}
		ht := time.Unix(0, hour).UTC()
		for k, e := range hm {
			entries = append(entries, ReadingEntry{
				Hour: ht, SensorID: k.sensor, Kind: k.kind, SpaceID: k.space, UserID: k.user,
				Count: e.count, Sum: e.sum, Min: e.min, Max: e.max, MinSeq: e.minSeq,
			})
		}
	}
	return entries, r.version.Load(), true
}

func (s *Store) srcAttached() *obstore.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.src
}
