package colstore

// Crash-injection for the WAL ↔ segment manifest handoff, extending
// the WAL suite's SIGKILL harness (internal/wal/recovery_test.go) to
// the columnar tier: a child process ingests into a durable row store
// and compacts continuously; the parent SIGKILLs it — either parked
// deterministically in the widest window (segment files written,
// manifest not yet committed) or at a random instant — then recovers
// both stores and asserts the unified view still equals the row store
// exactly: no bucket double-counted, none lost.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

func TestCrashMidCompaction(t *testing.T) {
	if os.Getenv("COL_CRASH_HELPER") != "" {
		t.Skip("helper mode is driven by the parent test")
	}
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGKILL semantics")
	}
	for _, mode := range []string{"mid", "random"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestColstoreCrashHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				"COL_CRASH_HELPER=1", "COL_CRASH_DIR="+dir, "COL_CRASH_MODE="+mode)
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}

			lines := make(chan string, 64)
			sc := bufio.NewScanner(stdout)
			go func() {
				for sc.Scan() {
					lines <- sc.Text()
				}
				close(lines)
			}()

			// In "mid" mode the child parks inside the compaction's
			// durable window and announces it; kill it right there. In
			// "random" mode wait for a few full compactions, then kill
			// after a random extra delay.
			compactions := 0
			deadline := time.After(30 * time.Second)
		scan:
			for {
				select {
				case <-deadline:
					cmd.Process.Kill()
					t.Fatal("child never reached the kill point")
				case line, ok := <-lines:
					if !ok {
						t.Fatal("child exited before being killed")
					}
					switch {
					case mode == "mid" && strings.HasPrefix(line, "midcompact"):
						break scan
					case strings.HasPrefix(line, "compacted"):
						compactions++
						if mode == "random" && compactions >= 3 {
							time.Sleep(time.Duration(rand.Intn(40)) * time.Millisecond)
							break scan
						}
					}
				}
			}
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			cmd.Wait()
			go func() {
				for range lines {
				}
			}()

			// Recover both stores. The manifest must never be torn, and
			// the unified segments+tail view must equal the recovered
			// row store row for row: a lost bucket would leave a seq
			// gap, a double-counted one a duplicate.
			src, err := obstore.OpenDurable(obstore.DurableConfig{Dir: filepath.Join(dir, "store")})
			if err != nil {
				t.Fatalf("row store recovery: %v", err)
			}
			cs, err := Open(Config{Dir: filepath.Join(dir, "col"), BucketDur: 50 * time.Millisecond})
			if err != nil {
				t.Fatalf("columnar recovery: %v", err)
			}
			cs.AttachStore(src)

			want := src.Query(obstore.Filter{})
			got := cs.Query(obstore.Filter{})
			if !reflect.DeepEqual(normTimes(got), normTimes(want)) {
				t.Fatalf("after crash recovery, unified view diverged: %d rows vs %d", len(got), len(want))
			}
			seen := map[uint64]bool{}
			for _, o := range got {
				if seen[o.Seq] {
					t.Fatalf("seq %d served twice after recovery (double-counted bucket)", o.Seq)
				}
				seen[o.Seq] = true
			}
			if wm := cs.Watermark(); wm > 0 {
				for _, info := range cs.Segments() {
					if info.MaxSeq > wm {
						t.Fatalf("segment %d reaches seq %d past watermark %d", info.ID, info.MaxSeq, wm)
					}
				}
			}

			// The tier keeps working: another compaction pass and the
			// views still agree.
			if _, err := cs.CompactOnce(); err != nil {
				t.Fatalf("post-recovery compaction: %v", err)
			}
			got = cs.Query(obstore.Filter{})
			want = src.Query(obstore.Filter{})
			if !reflect.DeepEqual(normTimes(got), normTimes(want)) {
				t.Fatalf("post-recovery compaction diverged: %d rows vs %d", len(got), len(want))
			}
			t.Logf("mode=%s: recovered %d rows, watermark=%d, %d segments",
				mode, len(want), cs.Watermark(), len(cs.Segments()))
		})
	}
}

// TestColstoreCrashHelper is the child side: ingest and compact until
// killed. With COL_CRASH_MODE=mid it parks in testHookMidCompact —
// after segment files are durable, before the manifest commit — and
// waits there for the parent's SIGKILL.
func TestColstoreCrashHelper(t *testing.T) {
	if os.Getenv("COL_CRASH_HELPER") == "" {
		t.Skip("crash-harness child; run via TestCrashMidCompaction")
	}
	dir := os.Getenv("COL_CRASH_DIR")
	mode := os.Getenv("COL_CRASH_MODE")
	src, err := obstore.OpenDurable(obstore.DurableConfig{Dir: filepath.Join(dir, "store")})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Open(Config{Dir: filepath.Join(dir, "col"), BucketDur: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cs.AttachStore(src)
	// In "mid" mode, arm the hook only after a few clean compactions
	// so the kill lands on a tier that already has live segments to
	// preserve; then park inside the durable window until SIGKILLed.
	var armed atomic.Bool
	if mode == "mid" {
		testHookMidCompact = func() {
			if armed.Load() {
				fmt.Println("midcompact")
				os.Stdout.Sync()
				time.Sleep(30 * time.Second) // hold the window open for the SIGKILL
			}
		}
		defer func() { testHookMidCompact = nil }()
	}

	i := 0
	rounds := 0
	for {
		for j := 0; j < 50; j++ {
			i++
			o := sensor.Observation{
				SensorID: fmt.Sprintf("ap-%d", i%4),
				Kind:     sensor.ObsWiFiConnect,
				Time:     time.Now(),
				SpaceID:  fmt.Sprintf("s%d", i%3),
				UserID:   fmt.Sprintf("u%d", i%5),
				Value:    float64(i),
			}
			if _, err := src.Append(o); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(60 * time.Millisecond) // let buckets close
		n, err := cs.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("compacted %d wm=%d\n", n, cs.Watermark())
		os.Stdout.Sync()
		rounds++
		if rounds >= 3 {
			armed.Store(true)
		}
	}
}
