package colstore

// RollupFor bridges the rollup cubes to the analytical query layer:
// given a pushed-down store filter, it decides which cube (if any) can
// answer that filter *exactly* and returns the matching cells. The
// cells are ground truth — raw counts and value stats keyed by the
// true subject — and the query layer re-applies the requester's
// enforcement to every cell before anything is released.

import (
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

// RollupCell is one pre-aggregated ground-truth cell: a time bucket's
// stats for one (sensor, kind, space, subject) combination. Cells from
// the minute occupancy cube carry counts only (SensorID empty,
// Sum/Min/Max zero); cells from the hour readings cube carry full
// value statistics.
type RollupCell struct {
	Bucket   time.Time
	SensorID string
	Kind     sensor.ObservationKind
	SpaceID  string
	UserID   string
	Count    int
	Sum      float64
	Min, Max float64
	MinSeq   uint64
}

// RollupFor answers a pushed-down filter from the rollup cubes when a
// cube covers it exactly: the filter must not carry bounds the cubes
// cannot evaluate (seq cursors, MAC or space predicates, limits), and
// its time window must align to the chosen cube's bucket so no bucket
// is partially inside the window. needSensor forces the hour cube
// (the minute cube has no sensor dimension); needValue does too (only
// the hour cube keeps value statistics). ok=false means the caller
// must fall back to a row scan.
func (s *Store) RollupFor(f obstore.Filter, needSensor, needValue bool) ([]RollupCell, bool) {
	if f.AfterSeq != 0 || f.DeviceMAC != "" || len(f.SpaceIDs) > 0 || f.Limit != 0 {
		return nil, false
	}
	hourly := needSensor || needValue || f.SensorID != ""
	dur := time.Minute
	if hourly {
		dur = time.Hour
	}
	if !bucketAligned(f.From, dur) || !bucketAligned(f.To, dur) {
		return nil, false
	}
	var cells []RollupCell
	if hourly {
		entries, _, ok := s.ReadingsRollup(f.From, f.To)
		if !ok {
			return nil, false
		}
		for _, e := range entries {
			if f.SensorID != "" && e.SensorID != f.SensorID {
				continue
			}
			if f.Kind != "" && e.Kind != f.Kind {
				continue
			}
			if f.UserID != "" && e.UserID != f.UserID {
				continue
			}
			cells = append(cells, RollupCell{
				Bucket: e.Hour, SensorID: e.SensorID, Kind: e.Kind,
				SpaceID: e.SpaceID, UserID: e.UserID,
				Count: e.Count, Sum: e.Sum, Min: e.Min, Max: e.Max, MinSeq: e.MinSeq,
			})
		}
	} else {
		entries, _, ok := s.OccupancyRollup(f.From, f.To)
		if !ok {
			return nil, false
		}
		for _, e := range entries {
			if f.Kind != "" && e.Kind != f.Kind {
				continue
			}
			if f.UserID != "" && e.UserID != f.UserID {
				continue
			}
			cells = append(cells, RollupCell{
				Bucket: e.Minute, Kind: e.Kind, SpaceID: e.SpaceID, UserID: e.UserID,
				Count: e.Count, MinSeq: e.MinSeq,
			})
		}
	}
	return cells, true
}

func bucketAligned(t time.Time, dur time.Duration) bool {
	return t.IsZero() || t.Truncate(dur).Equal(t)
}
