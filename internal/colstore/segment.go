package colstore

// This file is the columnar segment codec. A segment is one closed
// time bucket's observations, re-laid column-per-field: sequence
// numbers and timestamps as delta+varint streams (both nearly
// monotone, so deltas are tiny), the five identifier fields
// (sensor/space/user/kind/device-MAC) dictionary-coded (a bucket sees
// few distinct IDs, so each row is one small index), values as
// uvarint-packed IEEE-754 bits, and the rare payload maps inline. The
// dictionaries double as the segment's zone-map sets: membership
// checks let a reader skip a segment without touching a single row.
// A CRC-32 trailer makes torn or bit-rotted files detectable, and the
// decoder is fully bounds-checked — arbitrary bytes must produce an
// error, never a panic (see FuzzSegmentDecode).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

const (
	segMagic        = "TCS1"
	segCodecVersion = 1

	// Decode guards: a corrupt length prefix must fail fast instead of
	// asking the allocator for petabytes.
	maxSegmentRows  = 1 << 26
	maxDictEntries  = 1 << 22
	maxStringLen    = 1 << 20
	maxPayloadPairs = 1 << 12
)

var errCorrupt = errors.New("colstore: corrupt segment")

// segment is one immutable columnar run of observations from a single
// closed time bucket, sorted by ascending seq.
type segment struct {
	id     uint64
	bucket time.Time // bucket start (UTC)
	bytes  int64     // encoded size

	// Zone maps.
	minSeq, maxSeq   uint64
	minTime, maxTime int64 // unix nanos

	// Columns, one entry per row.
	seqs  []uint64
	times []int64 // unix nanos

	sensors dictCol
	spaces  dictCol
	users   dictCol
	kinds   dictCol
	macs    dictCol

	values   []float64
	payloads []map[string]string // nil when the row had none
}

func (sg *segment) rows() int { return len(sg.seqs) }

// row materializes row i back into the store's observation shape.
// Times come back UTC-normalized, exactly as the WAL recovery path
// restores them.
func (sg *segment) row(i int) sensor.Observation {
	return sensor.Observation{
		Seq:       sg.seqs[i],
		SensorID:  sg.sensors.at(i),
		Kind:      sensor.ObservationKind(sg.kinds.at(i)),
		Time:      time.Unix(0, sg.times[i]).UTC(),
		SpaceID:   sg.spaces.at(i),
		DeviceMAC: sg.macs.at(i),
		UserID:    sg.users.at(i),
		Value:     sg.values[i],
		Payload:   sg.payloads[i],
	}
}

// disjoint reports whether the filter cannot match any row of this
// segment, judged purely from zone maps (seq/time ranges plus
// dictionary membership). Conservative: false means "must scan", and
// scanning is always correct.
func (sg *segment) disjoint(f obstore.Filter, spaceSet map[string]bool) bool {
	if f.AfterSeq >= sg.maxSeq {
		return true
	}
	if !f.From.IsZero() && f.From.UnixNano() > sg.maxTime {
		return true
	}
	if !f.To.IsZero() && f.To.UnixNano() <= sg.minTime {
		return true
	}
	if f.SensorID != "" && !sg.sensors.has(f.SensorID) {
		return true
	}
	if f.UserID != "" && !sg.users.has(f.UserID) {
		return true
	}
	if f.DeviceMAC != "" && !sg.macs.has(f.DeviceMAC) {
		return true
	}
	if f.Kind != "" && !sg.kinds.has(string(f.Kind)) {
		return true
	}
	if spaceSet != nil {
		hit := false
		for _, s := range sg.spaces.dict {
			if spaceSet[s] {
				hit = true
				break
			}
		}
		if !hit {
			return true
		}
	}
	return false
}

// dictCol is one dictionary-coded string column: the distinct values
// in first-appearance order plus a per-row index stream.
type dictCol struct {
	dict []string
	set  map[string]int // value -> dict position
	idx  []uint32
}

func (c *dictCol) add(s string) {
	if c.set == nil {
		c.set = make(map[string]int)
	}
	pos, ok := c.set[s]
	if !ok {
		pos = len(c.dict)
		c.dict = append(c.dict, s)
		c.set[s] = pos
	}
	c.idx = append(c.idx, uint32(pos))
}

func (c *dictCol) at(i int) string { return c.dict[c.idx[i]] }

func (c *dictCol) has(s string) bool {
	_, ok := c.set[s]
	return ok
}

// buildSegment lays out rows (ascending seq, all in one bucket) as a
// segment. The caller owns ordering; buildSegment only asserts it.
func buildSegment(id uint64, bucket time.Time, rows []sensor.Observation) (*segment, error) {
	if len(rows) == 0 {
		return nil, errors.New("colstore: empty segment")
	}
	sg := &segment{
		id:      id,
		bucket:  bucket.UTC(),
		minTime: math.MaxInt64,
		maxTime: math.MinInt64,
	}
	var prevSeq uint64
	for i, o := range rows {
		if i > 0 && o.Seq <= prevSeq {
			return nil, fmt.Errorf("colstore: segment rows out of seq order (%d after %d)", o.Seq, prevSeq)
		}
		prevSeq = o.Seq
		sg.seqs = append(sg.seqs, o.Seq)
		ns := o.Time.UnixNano()
		sg.times = append(sg.times, ns)
		if ns < sg.minTime {
			sg.minTime = ns
		}
		if ns > sg.maxTime {
			sg.maxTime = ns
		}
		sg.sensors.add(o.SensorID)
		sg.spaces.add(o.SpaceID)
		sg.users.add(o.UserID)
		sg.kinds.add(string(o.Kind))
		sg.macs.add(o.DeviceMAC)
		sg.values = append(sg.values, o.Value)
		var p map[string]string
		if len(o.Payload) > 0 {
			p = make(map[string]string, len(o.Payload))
			for k, v := range o.Payload {
				p[k] = v
			}
		}
		sg.payloads = append(sg.payloads, p)
	}
	sg.minSeq = sg.seqs[0]
	sg.maxSeq = sg.seqs[len(sg.seqs)-1]
	return sg, nil
}

// encode serializes the segment. Layout (all integers varint/uvarint):
//
//	magic "TCS1" | version | rowCount | bucketStartNano
//	seq column:   first, then strictly positive deltas
//	time column:  first, then signed deltas
//	5 dict columns: dictLen, dict strings, then rowCount indexes
//	value column: rowCount uvarint(Float64bits)
//	payload column: per row pairCount + key/value strings
//	crc32-IEEE of everything above, 4 bytes little-endian
func (sg *segment) encode() []byte {
	buf := make([]byte, 0, 64+len(sg.seqs)*8)
	buf = append(buf, segMagic...)
	buf = binary.AppendUvarint(buf, segCodecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(sg.seqs)))
	buf = binary.AppendVarint(buf, sg.bucket.UnixNano())

	buf = binary.AppendUvarint(buf, sg.seqs[0])
	for i := 1; i < len(sg.seqs); i++ {
		buf = binary.AppendUvarint(buf, sg.seqs[i]-sg.seqs[i-1])
	}
	buf = binary.AppendVarint(buf, sg.times[0])
	for i := 1; i < len(sg.times); i++ {
		buf = binary.AppendVarint(buf, sg.times[i]-sg.times[i-1])
	}
	for _, col := range []*dictCol{&sg.sensors, &sg.spaces, &sg.users, &sg.kinds, &sg.macs} {
		buf = binary.AppendUvarint(buf, uint64(len(col.dict)))
		for _, s := range col.dict {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		for _, ix := range col.idx {
			buf = binary.AppendUvarint(buf, uint64(ix))
		}
	}
	for _, v := range sg.values {
		buf = binary.AppendUvarint(buf, math.Float64bits(v))
	}
	for _, p := range sg.payloads {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		if len(p) == 0 {
			continue
		}
		keys := make([]string, 0, len(p))
		for k := range p {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			buf = binary.AppendUvarint(buf, uint64(len(p[k])))
			buf = append(buf, p[k]...)
		}
	}
	sum := crc32.ChecksumIEEE(buf)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	return append(buf, tail[:]...)
}

// segReader is a bounds-checked cursor over an untrusted byte slice.
// The first malformed read poisons it; callers check err once at the
// end of a decode phase.
type segReader struct {
	b   []byte
	off int
	err error
}

func (r *segReader) fail() {
	if r.err == nil {
		r.err = errCorrupt
	}
}

func (r *segReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *segReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *segReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen || r.off+int(n) > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// decodeSegment parses one encoded segment. It must be total: any
// input either yields a structurally valid segment or an error.
func decodeSegment(id uint64, data []byte) (*segment, error) {
	if len(data) < len(segMagic)+4 {
		return nil, errCorrupt
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("colstore: segment checksum mismatch")
	}
	if string(body[:len(segMagic)]) != segMagic {
		return nil, errCorrupt
	}
	r := &segReader{b: body, off: len(segMagic)}
	if v := r.uvarint(); v != segCodecVersion {
		if r.err == nil {
			r.err = fmt.Errorf("colstore: unsupported segment version %d", v)
		}
		return nil, r.err
	}
	n := r.uvarint()
	if r.err != nil || n == 0 || n > maxSegmentRows {
		r.fail()
		return nil, r.err
	}
	rows := int(n)
	sg := &segment{
		id:      id,
		bytes:   int64(len(data)),
		minTime: math.MaxInt64,
		maxTime: math.MinInt64,
	}
	sg.bucket = time.Unix(0, r.varint()).UTC()

	sg.seqs = make([]uint64, rows)
	sg.seqs[0] = r.uvarint()
	for i := 1; i < rows; i++ {
		d := r.uvarint()
		if d == 0 {
			r.fail()
		}
		sg.seqs[i] = sg.seqs[i-1] + d
		if sg.seqs[i] < sg.seqs[i-1] { // overflow
			r.fail()
		}
	}
	sg.times = make([]int64, rows)
	sg.times[0] = r.varint()
	for i := 1; i < rows; i++ {
		sg.times[i] = sg.times[i-1] + r.varint()
	}
	if r.err != nil {
		return nil, r.err
	}
	for _, col := range []*dictCol{&sg.sensors, &sg.spaces, &sg.users, &sg.kinds, &sg.macs} {
		dn := r.uvarint()
		if r.err != nil || dn == 0 || dn > maxDictEntries {
			r.fail()
			return nil, r.err
		}
		col.dict = make([]string, int(dn))
		col.set = make(map[string]int, int(dn))
		for i := range col.dict {
			col.dict[i] = r.str()
			col.set[col.dict[i]] = i
		}
		col.idx = make([]uint32, rows)
		for i := 0; i < rows; i++ {
			ix := r.uvarint()
			if ix >= dn {
				r.fail()
				return nil, r.err
			}
			col.idx[i] = uint32(ix)
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	sg.values = make([]float64, rows)
	for i := 0; i < rows; i++ {
		sg.values[i] = math.Float64frombits(r.uvarint())
	}
	sg.payloads = make([]map[string]string, rows)
	for i := 0; i < rows; i++ {
		pn := r.uvarint()
		if r.err != nil || pn > maxPayloadPairs {
			r.fail()
			return nil, r.err
		}
		if pn == 0 {
			continue
		}
		p := make(map[string]string, int(pn))
		for j := uint64(0); j < pn; j++ {
			k := r.str()
			v := r.str()
			if r.err != nil {
				return nil, r.err
			}
			p[k] = v
		}
		sg.payloads[i] = p
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, errCorrupt
	}
	sg.minSeq = sg.seqs[0]
	sg.maxSeq = sg.seqs[rows-1]
	for _, ns := range sg.times {
		if ns < sg.minTime {
			sg.minTime = ns
		}
		if ns > sg.maxTime {
			sg.maxTime = ns
		}
	}
	return sg, nil
}

// rowMatches mirrors obstore's filter semantics exactly (From
// inclusive, To exclusive) so a segment scan and a store scan agree
// row for row.
func rowMatches(o sensor.Observation, f obstore.Filter, spaceSet map[string]bool) bool {
	if o.Seq <= f.AfterSeq {
		return false
	}
	if !f.From.IsZero() && o.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !o.Time.Before(f.To) {
		return false
	}
	if f.SensorID != "" && o.SensorID != f.SensorID {
		return false
	}
	if f.UserID != "" && o.UserID != f.UserID {
		return false
	}
	if f.DeviceMAC != "" && o.DeviceMAC != f.DeviceMAC {
		return false
	}
	if f.Kind != "" && o.Kind != f.Kind {
		return false
	}
	if spaceSet != nil && !spaceSet[o.SpaceID] {
		return false
	}
	return true
}
