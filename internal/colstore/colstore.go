// Package colstore is the columnar time-partitioned storage tier: a
// second physical representation of the observation log, built for
// the aggregate-heavy transparency workloads the paper's occupant
// interfaces generate. Closed time buckets are compacted out of the
// row-oriented sharded store into immutable column-per-field segments
// (segment.go) guarded by zone maps, and incremental rollup cubes
// (rollup.go) keep per-minute occupancy and per-hour reading
// aggregates hot. Both representations store ground truth keyed by
// the true subject — enforcement (release granularity, k-floors,
// noise) is re-applied per requester at read time, exactly as on the
// row path, never baked into what is stored.
//
// The handoff between the write-ahead log and the segment files is a
// sequence watermark: CompactOnce takes the store's rows with seq >
// watermark (they arrive seq-ascending), cuts the prefix whose time
// buckets have closed, writes one segment per bucket, and commits the
// new watermark in a crash-safe manifest (manifest.go). Readers then
// split exactly: segments serve seq <= watermark, the row store
// serves seq > watermark — no overlap, no gap, at every instant
// including across a SIGKILL anywhere inside compaction.
package colstore

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/telemetry"
)

// Config sizes and places the columnar tier.
type Config struct {
	// Dir holds segment files and the manifest; empty runs the tier
	// fully in memory (segments still immutable, nothing durable).
	Dir string
	// BucketDur is the time-partition width; one closed bucket becomes
	// one segment per compaction. Default one minute.
	BucketDur time.Duration
	// Clock decides when a bucket has closed; nil means time.Now.
	Clock func() time.Time
	// RollupMaxEntries caps the rollup cubes; past it the cubes shut
	// down and readers fall back to scans. Default 1<<20.
	RollupMaxEntries int
	// DisableRollups turns the cubes off entirely (benchmarking the
	// pure segment path).
	DisableRollups bool
}

// Store is the columnar tier: immutable segments plus rollup cubes,
// layered over (and fed by) the row-oriented obstore.
type Store struct {
	cfg Config

	mu   sync.RWMutex
	segs []*segment // ascending minSeq
	// wm is the compaction watermark: every observation with seq <= wm
	// lives in segments; everything above is the row store's tail.
	wm     uint64
	nextID uint64
	// seqTomb / userTomb are erasure tombstones: rows already sealed
	// into segments that retention or GDPR erasure has since deleted.
	// Reads filter them immediately; the next compaction rewrites the
	// affected segments so the bytes leave disk too.
	seqTomb  map[uint64]struct{}
	userTomb map[string]struct{}
	// compactingUpTo widens the tombstone-recording window while a
	// compaction is in flight: it is set to ^uint64(0) before the
	// compactor snapshots the row store and cleared on every exit, so
	// a deletion racing the snapshot always lands as a tombstone
	// instead of leaking into a fresh segment with the row-store copy
	// already gone.
	compactingUpTo uint64

	// ioMu serializes durable state transitions (segment files +
	// manifest): compactions and tombstone persists never interleave.
	ioMu sync.Mutex
	// tombDirty marks tombstones that exist only in memory because
	// their manifest write failed; the next manifest write (idle
	// compaction pass or commit) retries so a crash cannot resurrect
	// erased rows from segments.
	tombDirty atomic.Bool

	src  *obstore.Store
	roll *rollups

	// epoch counts policy/preference invalidations; any cached answer
	// derived through enforcement must be keyed on it.
	epoch atomic.Uint64

	segScanned     atomic.Uint64
	segPruned      atomic.Uint64
	compactions    atomic.Uint64
	rowsCompacted  atomic.Uint64
	bytesWritten   atomic.Uint64
	lastBucketEnd  atomic.Int64 // unix nanos; end of newest compacted bucket
	manifestWrites atomic.Uint64
}

// testHookMidCompact, when non-nil, runs after a compaction's segment
// files are durably written but before the manifest commit — the
// widest crash window. The SIGKILL crash test parks the process here.
var testHookMidCompact func()

// testHookAfterSnapshot, when non-nil, runs right after CompactOnce
// snapshots the row store's tail — the window where a racing deletion
// must land as a tombstone rather than leak into a fresh segment.
var testHookAfterSnapshot func()

// Open loads (or initializes) a columnar store. With a directory it
// replays the manifest, drops orphan segment files a crash left
// behind, and decodes every live segment.
func Open(cfg Config) (*Store, error) {
	if cfg.BucketDur <= 0 {
		cfg.BucketDur = time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.RollupMaxEntries <= 0 {
		cfg.RollupMaxEntries = 1 << 20
	}
	s := &Store{
		cfg:      cfg,
		seqTomb:  make(map[uint64]struct{}),
		userTomb: make(map[string]struct{}),
	}
	s.roll = newRollups(s, cfg.RollupMaxEntries, cfg.DisableRollups)
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	st, err := readManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	live := map[string]bool{manifestName: true}
	for _, ms := range st.Segments {
		live[ms.File] = true
	}
	if err := sweepOrphans(cfg.Dir, live); err != nil {
		return nil, err
	}
	for _, ms := range st.Segments {
		data, err := os.ReadFile(filepath.Join(cfg.Dir, ms.File))
		if err != nil {
			return nil, fmt.Errorf("colstore: segment %s: %w", ms.File, err)
		}
		sg, err := decodeSegment(ms.ID, data)
		if err != nil {
			return nil, fmt.Errorf("colstore: segment %s: %w", ms.File, err)
		}
		s.segs = append(s.segs, sg)
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].minSeq < s.segs[j].minSeq })
	s.wm = st.Watermark
	s.nextID = st.NextID
	for _, seq := range st.SeqTombstones {
		s.seqTomb[seq] = struct{}{}
	}
	for _, u := range st.UserTombstones {
		s.userTomb[u] = struct{}{}
	}
	if n := len(s.segs); n > 0 {
		last := s.segs[n-1]
		s.lastBucketEnd.Store(last.bucket.Add(cfg.BucketDur).UnixNano())
	}
	return s, nil
}

// AttachStore binds the columnar tier to its ground-truth row store:
// it becomes the store's listener (rollups follow every append and
// deletion synchronously) and rebuilds the rollup cubes from the
// current unified contents.
func (s *Store) AttachStore(src *obstore.Store) {
	s.mu.Lock()
	s.src = src
	s.mu.Unlock()
	src.SetListener(s)
	s.roll.rebuildAll()
}

// Watermark returns the compaction watermark: the highest seq served
// from segments.
func (s *Store) Watermark() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wm
}

// Epoch returns the enforcement-invalidation epoch. Cached answers
// derived through policy decisions must revalidate when it moves.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Invalidate bumps the enforcement epoch. The stream hub calls it
// whenever a policy or preference changes.
func (s *Store) Invalidate() { s.epoch.Add(1) }

// RollupVersion returns the rollup cubes' mutation counter.
func (s *Store) RollupVersion() uint64 { return s.roll.version.Load() }

// ObservationAppended implements obstore.Listener: every append feeds
// the rollup cubes in the ingest path itself, so cubes never lag the
// ground truth.
func (s *Store) ObservationAppended(o sensor.Observation) { s.roll.observe(o) }

// ObservationsDeleted implements obstore.Listener. Rows the store
// deleted that are already sealed into segments become tombstones —
// persisted to the manifest immediately so erasure survives a crash —
// and the affected rollup buckets are marked dirty for rebuild.
func (s *Store) ObservationsDeleted(dels []obstore.Deletion) {
	s.mu.Lock()
	limit := s.wm
	if s.compactingUpTo > limit {
		limit = s.compactingUpTo
	}
	changed := false
	for _, d := range dels {
		if d.Seq <= limit {
			if _, ok := s.seqTomb[d.Seq]; !ok {
				s.seqTomb[d.Seq] = struct{}{}
				changed = true
			}
		}
		if d.Erased && d.UserID != "" {
			if _, ok := s.userTomb[d.UserID]; !ok {
				s.userTomb[d.UserID] = struct{}{}
				changed = true
			}
		}
	}
	durable := changed && s.cfg.Dir != ""
	s.mu.Unlock()
	if durable {
		s.ioMu.Lock()
		s.syncTombstonesLocked()
		s.ioMu.Unlock()
	}
	s.roll.deleted(dels)
}

// syncTombstonesLocked persists in-memory state — notably fresh
// erasure tombstones — to the manifest. A failure cannot be returned
// to the deleting caller (the listener interface is fire-and-forget),
// so it is logged and flagged for retry at the next manifest write;
// until that succeeds, a crash would resurrect the tombstoned rows
// from segments on reopen. Caller holds ioMu.
func (s *Store) syncTombstonesLocked() {
	if err := s.persistManifestLocked(); err != nil {
		s.tombDirty.Store(true)
		slog.Error("colstore: manifest write failed; erasure tombstones not yet durable, will retry",
			"dir", s.cfg.Dir, "err", err)
		return
	}
	s.tombDirty.Store(false)
}

// persistManifestLocked snapshots in-memory state into the manifest.
// Caller holds ioMu.
func (s *Store) persistManifestLocked() error {
	s.mu.RLock()
	st := s.manifestSnapshotLocked()
	s.mu.RUnlock()
	if err := writeManifest(s.cfg.Dir, st); err != nil {
		return err
	}
	s.manifestWrites.Add(1)
	return nil
}

// manifestSnapshotLocked builds the manifest view of current state.
// Caller holds s.mu (read or write).
func (s *Store) manifestSnapshotLocked() manifestState {
	st := manifestState{Watermark: s.wm, NextID: s.nextID}
	for _, sg := range s.segs {
		st.Segments = append(st.Segments, manifestSegment{
			ID: sg.id, File: segFileName(sg.id), Bucket: sg.bucket.UnixNano(),
			Rows: sg.rows(), MinSeq: sg.minSeq, MaxSeq: sg.maxSeq,
			MinTime: sg.minTime, MaxTime: sg.maxTime, Bytes: sg.bytes,
		})
	}
	for seq := range s.seqTomb {
		st.SeqTombstones = append(st.SeqTombstones, seq)
	}
	sort.Slice(st.SeqTombstones, func(i, j int) bool { return st.SeqTombstones[i] < st.SeqTombstones[j] })
	for u := range s.userTomb {
		st.UserTombstones = append(st.UserTombstones, u)
	}
	sort.Strings(st.UserTombstones)
	return st
}

// CompactOnce runs one compaction pass: seal every closed time bucket
// above the watermark into segments, rewrite any segment an erasure
// tombstone touches, and commit the whole transition through the
// manifest. Returns the number of newly sealed rows.
func (s *Store) CompactOnce() (int, error) {
	s.mu.RLock()
	src := s.src
	s.mu.RUnlock()
	if src == nil {
		return 0, nil
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()

	now := s.cfg.Clock()
	s.mu.Lock()
	wm := s.wm
	nextID := s.nextID
	oldSegs := append([]*segment(nil), s.segs...)
	seqTombSnap := make(map[uint64]struct{}, len(s.seqTomb))
	for seq := range s.seqTomb {
		seqTombSnap[seq] = struct{}{}
	}
	userTombSnap := make(map[string]struct{}, len(s.userTomb))
	for u := range s.userTomb {
		userTombSnap[u] = struct{}{}
	}
	// Widen the tombstone-recording window BEFORE snapshotting the
	// store below: a deletion that fires between the snapshot and the
	// commit would otherwise compare against the old watermark, record
	// nothing, and the deleted row — already captured in the snapshot,
	// already gone from the row store — would be sealed into a segment
	// with nothing left to ever remove it. Tombstones for seqs that
	// turn out never to be sealed are harmless: reads filter a seq
	// that no longer exists anywhere, and they retire once the
	// watermark passes them.
	s.compactingUpTo = ^uint64(0)
	s.mu.Unlock()

	// Take the seq-ascending tail and cut at the first row whose
	// bucket is still open: the watermark must advance as a contiguous
	// seq prefix, so a row in an open bucket fences everything behind
	// it until the bucket closes.
	rows := src.Query(obstore.Filter{AfterSeq: wm})
	if testHookAfterSnapshot != nil {
		testHookAfterSnapshot()
	}
	cut := len(rows)
	for i, o := range rows {
		if o.Time.Truncate(s.cfg.BucketDur).Add(s.cfg.BucketDur).After(now) {
			cut = i
			break
		}
	}
	rows = rows[:cut]

	// Everything about to be sealed must be durable in the WAL before
	// a segment can hold it: the sync runs after the snapshot above,
	// so it covers every snapshotted row, and a crash after this point
	// can never leave a segment knowing rows WAL recovery does not.
	if len(rows) > 0 {
		if err := src.SyncWAL(); err != nil {
			s.clearCompacting()
			return 0, err
		}
	}

	tombWork := tombstonesTouch(oldSegs, seqTombSnap, userTombSnap)
	if len(rows) == 0 && !tombWork {
		s.clearCompacting()
		// Idle passes double as the retry point for tombstones whose
		// manifest write failed in ObservationsDeleted.
		if s.cfg.Dir != "" && s.tombDirty.Load() {
			s.syncTombstonesLocked()
		}
		return 0, nil
	}

	newWM := wm
	if len(rows) > 0 {
		newWM = rows[len(rows)-1].Seq
	}

	// Partition the sealed prefix by time bucket, preserving seq order
	// within each bucket, and build fresh segments.
	var fresh []*segment
	byBucket := make(map[int64][]sensor.Observation)
	var starts []int64
	for _, o := range rows {
		b := o.Time.Truncate(s.cfg.BucketDur).UnixNano()
		if _, ok := byBucket[b]; !ok {
			starts = append(starts, b)
		}
		byBucket[b] = append(byBucket[b], o)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, b := range starts {
		sg, err := buildSegment(nextID, time.Unix(0, b).UTC(), byBucket[b])
		if err != nil {
			s.clearCompacting()
			return 0, err
		}
		nextID++
		fresh = append(fresh, sg)
	}

	// Rewrite segments the tombstones touch: drop condemned rows and
	// re-encode, so the erased bytes (rows and dictionary entries)
	// leave disk, not just the index.
	var keep, rewritten []*segment
	var dropped []*segment
	for _, sg := range oldSegs {
		if !segmentTouched(sg, seqTombSnap, userTombSnap) {
			keep = append(keep, sg)
			continue
		}
		var surviving []sensor.Observation
		for i := 0; i < sg.rows(); i++ {
			if _, dead := seqTombSnap[sg.seqs[i]]; dead {
				continue
			}
			if _, dead := userTombSnap[sg.users.at(i)]; dead {
				continue
			}
			surviving = append(surviving, sg.row(i))
		}
		dropped = append(dropped, sg)
		if len(surviving) == 0 {
			continue
		}
		nsg, err := buildSegment(nextID, sg.bucket, surviving)
		if err != nil {
			s.clearCompacting()
			return 0, err
		}
		nextID++
		rewritten = append(rewritten, nsg)
	}

	newSegs := make([]*segment, 0, len(keep)+len(rewritten)+len(fresh))
	newSegs = append(newSegs, keep...)
	newSegs = append(newSegs, rewritten...)
	newSegs = append(newSegs, fresh...)
	sort.Slice(newSegs, func(i, j int) bool { return newSegs[i].minSeq < newSegs[j].minSeq })

	// Durable phase: segment files first, manifest second. The
	// manifest rename is the commit point.
	if s.cfg.Dir != "" {
		for _, sg := range append(append([]*segment(nil), rewritten...), fresh...) {
			data := sg.encode()
			sg.bytes = int64(len(data))
			if err := writeSegmentFile(s.cfg.Dir, segFileName(sg.id), data); err != nil {
				s.clearCompacting()
				return 0, err
			}
			s.bytesWritten.Add(uint64(len(data)))
		}
		if testHookMidCompact != nil {
			testHookMidCompact()
		}
	} else {
		for _, sg := range append(append([]*segment(nil), rewritten...), fresh...) {
			sg.bytes = int64(len(sg.encode()))
		}
	}

	// Commit in memory: swap the segment set, advance the watermark,
	// and retire the tombstones this pass applied (a tombstone <= the
	// new watermark either got rewritten out or named a row that was
	// deleted before it was ever sealed).
	s.mu.Lock()
	s.segs = newSegs
	s.wm = newWM
	s.nextID = nextID
	for seq := range seqTombSnap {
		if seq <= newWM {
			delete(s.seqTomb, seq)
		}
	}
	for u := range userTombSnap {
		delete(s.userTomb, u)
	}
	s.compactingUpTo = 0
	st := s.manifestSnapshotLocked()
	s.mu.Unlock()

	if s.cfg.Dir != "" {
		if err := writeManifest(s.cfg.Dir, st); err != nil {
			s.tombDirty.Store(true)
			return 0, err
		}
		s.manifestWrites.Add(1)
		s.tombDirty.Store(false)
		for _, sg := range dropped {
			os.Remove(filepath.Join(s.cfg.Dir, segFileName(sg.id)))
		}
	}

	s.compactions.Add(1)
	s.rowsCompacted.Add(uint64(len(rows)))
	if len(starts) > 0 {
		end := time.Unix(0, starts[len(starts)-1]).Add(s.cfg.BucketDur)
		s.lastBucketEnd.Store(end.UnixNano())
	}
	return len(rows), nil
}

func (s *Store) clearCompacting() {
	s.mu.Lock()
	s.compactingUpTo = 0
	s.mu.Unlock()
}

func tombstonesTouch(segs []*segment, seqTomb map[uint64]struct{}, userTomb map[string]struct{}) bool {
	for _, sg := range segs {
		if segmentTouched(sg, seqTomb, userTomb) {
			return true
		}
	}
	return false
}

func segmentTouched(sg *segment, seqTomb map[uint64]struct{}, userTomb map[string]struct{}) bool {
	for u := range userTomb {
		if sg.users.has(u) {
			return true
		}
	}
	for seq := range seqTomb {
		if seq >= sg.minSeq && seq <= sg.maxSeq {
			return true
		}
	}
	return false
}

// Query is the unified read path: zone-map-pruned segments serve seq
// <= watermark, the row store serves the tail above it. The result is
// row-for-row identical to querying the row store alone (tombstoned
// rows are gone from both views), in ascending seq order.
func (s *Store) Query(f obstore.Filter) []sensor.Observation {
	s.mu.RLock()
	src := s.src
	wm := s.wm
	segRows := s.collectSegmentsLocked(f, f.Limit)
	s.mu.RUnlock()
	if src == nil {
		return segRows
	}
	tf := f
	if wm > tf.AfterSeq {
		tf.AfterSeq = wm
	}
	if tf.Limit > 0 {
		tf.Limit -= len(segRows)
		if tf.Limit <= 0 {
			return segRows
		}
	}
	tail := src.Query(tf)
	if len(segRows) == 0 {
		return tail
	}
	return append(segRows, tail...)
}

// Count mirrors Query without materializing rows.
func (s *Store) Count(f obstore.Filter) int {
	s.mu.RLock()
	src := s.src
	wm := s.wm
	n := s.countSegmentsLocked(f)
	s.mu.RUnlock()
	if src == nil {
		return n
	}
	tf := f
	if wm > tf.AfterSeq {
		tf.AfterSeq = wm
	}
	return n + src.Count(tf)
}

// collectSegmentsLocked gathers matching segment rows in ascending
// seq order, at most limit (0 = no cap). Caller holds s.mu.
func (s *Store) collectSegmentsLocked(f obstore.Filter, limit int) []sensor.Observation {
	if len(s.segs) == 0 || f.AfterSeq >= s.wm {
		return nil
	}
	spaceSet := spaceSetFor(f)
	var pages [][]sensor.Observation
	for _, sg := range s.segs {
		if sg.disjoint(f, spaceSet) {
			s.segPruned.Add(1)
			continue
		}
		s.segScanned.Add(1)
		var page []sensor.Observation
		for i := 0; i < sg.rows(); i++ {
			if sg.seqs[i] <= f.AfterSeq {
				continue
			}
			if _, dead := s.seqTomb[sg.seqs[i]]; dead {
				continue
			}
			if len(s.userTomb) > 0 {
				if _, dead := s.userTomb[sg.users.at(i)]; dead {
					continue
				}
			}
			o := sg.row(i)
			if !rowMatches(o, f, spaceSet) {
				continue
			}
			page = append(page, o)
		}
		if len(page) > 0 {
			pages = append(pages, page)
		}
	}
	return mergeSegPages(pages, limit)
}

func (s *Store) countSegmentsLocked(f obstore.Filter) int {
	if len(s.segs) == 0 || f.AfterSeq >= s.wm {
		return 0
	}
	spaceSet := spaceSetFor(f)
	n := 0
	for _, sg := range s.segs {
		if sg.disjoint(f, spaceSet) {
			s.segPruned.Add(1)
			continue
		}
		s.segScanned.Add(1)
		for i := 0; i < sg.rows(); i++ {
			if sg.seqs[i] <= f.AfterSeq {
				continue
			}
			if _, dead := s.seqTomb[sg.seqs[i]]; dead {
				continue
			}
			if len(s.userTomb) > 0 {
				if _, dead := s.userTomb[sg.users.at(i)]; dead {
					continue
				}
			}
			if rowMatches(sg.row(i), f, spaceSet) {
				n++
			}
		}
	}
	return n
}

func spaceSetFor(f obstore.Filter) map[string]bool {
	if len(f.SpaceIDs) == 0 {
		return nil
	}
	set := make(map[string]bool, len(f.SpaceIDs))
	for _, id := range f.SpaceIDs {
		set[id] = true
	}
	return set
}

// mergeSegPages k-way-merges per-segment pages (each ascending in
// seq). Segments from one compaction pass can interleave in seq —
// bucket assignment follows observation time, not arrival — so a
// plain concatenation is not ordered.
func mergeSegPages(pages [][]sensor.Observation, limit int) []sensor.Observation {
	if len(pages) == 0 {
		return nil
	}
	if len(pages) == 1 {
		if limit > 0 && len(pages[0]) > limit {
			return pages[0][:limit]
		}
		return pages[0]
	}
	total := 0
	for _, p := range pages {
		total += len(p)
	}
	capHint := total
	if limit > 0 && limit < capHint {
		capHint = limit
	}
	out := make([]sensor.Observation, 0, capHint)
	heads := make([]int, len(pages))
	for {
		best := -1
		var bestSeq uint64
		for i, p := range pages {
			if heads[i] >= len(p) {
				continue
			}
			if sq := p[heads[i]].Seq; best < 0 || sq < bestSeq {
				best, bestSeq = i, sq
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, pages[best][heads[best]])
		heads[best]++
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}

// SegmentInfo is one segment's inspection view (iotactl segments,
// GET /v1/segments).
type SegmentInfo struct {
	ID      uint64    `json:"id"`
	Bucket  time.Time `json:"bucket"`
	Rows    int       `json:"rows"`
	Bytes   int64     `json:"bytes"`
	MinSeq  uint64    `json:"min_seq"`
	MaxSeq  uint64    `json:"max_seq"`
	MinTime time.Time `json:"min_time"`
	MaxTime time.Time `json:"max_time"`
	Sensors int       `json:"sensors"`
	Spaces  int       `json:"spaces"`
	Users   int       `json:"users"`
}

// TierStats summarizes the columnar tier for inspection endpoints.
type TierStats struct {
	Segments       int     `json:"segments"`
	Rows           int     `json:"rows"`
	Bytes          int64   `json:"bytes"`
	Watermark      uint64  `json:"watermark"`
	Compactions    uint64  `json:"compactions"`
	SegmentsPruned uint64  `json:"segments_pruned"`
	SegmentsRead   uint64  `json:"segments_read"`
	PruneRatio     float64 `json:"prune_ratio"`
	SeqTombstones  int     `json:"seq_tombstones"`
	UserTombstones int     `json:"user_tombstones"`
	RollupEntries  int     `json:"rollup_entries"`
	RollupVersion  uint64  `json:"rollup_version"`
	RollupDisabled bool    `json:"rollup_disabled"`
	Epoch          uint64  `json:"epoch"`
	RollupLagSec   float64 `json:"rollup_lag_seconds"`
}

// Segments lists live segments, ascending by bucket then id.
func (s *Store) Segments() []SegmentInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SegmentInfo, 0, len(s.segs))
	for _, sg := range s.segs {
		out = append(out, SegmentInfo{
			ID: sg.id, Bucket: sg.bucket, Rows: sg.rows(), Bytes: sg.bytes,
			MinSeq: sg.minSeq, MaxSeq: sg.maxSeq,
			MinTime: time.Unix(0, sg.minTime).UTC(), MaxTime: time.Unix(0, sg.maxTime).UTC(),
			Sensors: len(sg.sensors.dict), Spaces: len(sg.spaces.dict), Users: len(sg.users.dict),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Bucket.Equal(out[j].Bucket) {
			return out[i].Bucket.Before(out[j].Bucket)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Stats snapshots the tier's counters.
func (s *Store) Stats() TierStats {
	s.mu.RLock()
	ts := TierStats{
		Segments:       len(s.segs),
		Watermark:      s.wm,
		SeqTombstones:  len(s.seqTomb),
		UserTombstones: len(s.userTomb),
	}
	for _, sg := range s.segs {
		ts.Rows += sg.rows()
		ts.Bytes += sg.bytes
	}
	s.mu.RUnlock()
	ts.Compactions = s.compactions.Load()
	ts.SegmentsPruned = s.segPruned.Load()
	ts.SegmentsRead = s.segScanned.Load()
	if total := ts.SegmentsPruned + ts.SegmentsRead; total > 0 {
		ts.PruneRatio = float64(ts.SegmentsPruned) / float64(total)
	}
	ts.RollupEntries = s.roll.entryCount()
	ts.RollupVersion = s.roll.version.Load()
	ts.RollupDisabled = s.roll.isDisabled()
	ts.Epoch = s.epoch.Load()
	if end := s.lastBucketEnd.Load(); end > 0 {
		if lag := s.cfg.Clock().Sub(time.Unix(0, end)); lag > 0 {
			ts.RollupLagSec = lag.Seconds()
		}
	}
	return ts
}

// RegisterMetrics exposes the tier on the telemetry registry.
func (s *Store) RegisterMetrics(r *telemetry.Registry) {
	r.GaugeFunc("tippers_colstore_segments",
		"Live columnar segments.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.segs))
		})
	r.GaugeFunc("tippers_colstore_bytes",
		"Encoded bytes across live segments.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			var b int64
			for _, sg := range s.segs {
				b += sg.bytes
			}
			return float64(b)
		})
	r.GaugeFunc("tippers_colstore_watermark",
		"Compaction watermark: highest seq served from segments.", func() float64 {
			return float64(s.Watermark())
		})
	r.CounterFunc("tippers_colstore_compactions_total",
		"Completed compaction passes.", func() float64 {
			return float64(s.compactions.Load())
		})
	r.CounterFunc("tippers_colstore_rows_compacted_total",
		"Rows sealed into segments.", func() float64 {
			return float64(s.rowsCompacted.Load())
		})
	r.CounterFunc("tippers_colstore_segments_pruned_total",
		"Segments skipped wholesale by zone maps.", func() float64 {
			return float64(s.segPruned.Load())
		})
	r.CounterFunc("tippers_colstore_segments_read_total",
		"Segments actually scanned.", func() float64 {
			return float64(s.segScanned.Load())
		})
	r.GaugeFunc("tippers_colstore_rollup_entries",
		"Entries across the rollup cubes.", func() float64 {
			return float64(s.roll.entryCount())
		})
	r.GaugeFunc("tippers_colstore_rollup_lag_seconds",
		"Age of the newest compacted bucket (segment lag behind now).", func() float64 {
			end := s.lastBucketEnd.Load()
			if end == 0 {
				return 0
			}
			lag := s.cfg.Clock().Sub(time.Unix(0, end)).Seconds()
			if lag < 0 {
				return 0
			}
			return lag
		})
	r.GaugeFunc("tippers_colstore_epoch",
		"Enforcement invalidation epoch.", func() float64 {
			return float64(s.epoch.Load())
		})
}
