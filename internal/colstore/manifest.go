package colstore

// Manifest: the single durable commit point for the WAL → segment
// handoff. Segment files are immutable and fsynced before the
// manifest ever names them; the manifest itself is replaced by the
// classic tmp + fsync + rename + directory-fsync dance. A crash at
// any instant therefore leaves exactly one of two states: the old
// manifest (new segment files are unreferenced orphans, deleted on
// open) or the new manifest (every referenced file is already
// durable). The compaction watermark and the erasure tombstones live
// in the manifest too, so "which seqs the segments own" and "which
// rows erasure has condemned" survive SIGKILL together with the
// segments themselves.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

const manifestName = "MANIFEST.json"

// manifestSegment records one live segment file.
type manifestSegment struct {
	ID      uint64 `json:"id"`
	File    string `json:"file"`
	Bucket  int64  `json:"bucket_unix_nano"`
	Rows    int    `json:"rows"`
	MinSeq  uint64 `json:"min_seq"`
	MaxSeq  uint64 `json:"max_seq"`
	MinTime int64  `json:"min_time_unix_nano"`
	MaxTime int64  `json:"max_time_unix_nano"`
	Bytes   int64  `json:"bytes"`
}

// manifestState is the full persisted state of the columnar tier.
type manifestState struct {
	Version   int               `json:"version"`
	Watermark uint64            `json:"watermark"`
	NextID    uint64            `json:"next_id"`
	Segments  []manifestSegment `json:"segments"`
	// SeqTombstones are individual rows erased after compaction;
	// UserTombstones are erased subjects. Both are applied as read
	// filters immediately and rewritten out of segment files by the
	// next compaction.
	SeqTombstones  []uint64 `json:"seq_tombstones,omitempty"`
	UserTombstones []string `json:"user_tombstones,omitempty"`
}

func segFileName(id uint64) string { return fmt.Sprintf("seg-%08d.col", id) }

// writeManifest atomically replaces the manifest in dir.
func writeManifest(dir string, st manifestState) error {
	st.Version = 1
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readManifest loads the manifest, returning the zero state when none
// exists yet (fresh directory).
func readManifest(dir string) (manifestState, error) {
	var st manifestState
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("colstore: manifest corrupt: %w", err)
	}
	return st, nil
}

// writeSegmentFile durably writes one segment's encoded bytes. The
// file must be fully on disk before the manifest references it.
func writeSegmentFile(dir, name string, data []byte) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sweepOrphans removes segment files a crash left behind without a
// manifest reference (either half-written new segments or replaced
// ones whose delete didn't land).
func sweepOrphans(dir string, live map[string]bool) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || live[name] {
			continue
		}
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".col") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
		if name == manifestName+".tmp" {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
