package colstore

// GDPR-erasure regression: DeleteUser must reach the columnar tier's
// disk, not just its indexes. The subject's rows are tombstoned the
// instant the row store drops them (reads agree immediately), and the
// next compaction rewrites every touched segment so the subject's
// marker bytes — row data and dictionary entries alike — are gone
// from the segment files and the manifest.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

// Regression for the Sweep ↔ CompactOnce race: a retention deletion
// that fires after the compactor snapshots the row store but before
// it commits carries Erased=false (so no user tombstone applies), and
// its seq is above the old watermark — it must still land as a seq
// tombstone, or the expired row is sealed into a segment while its
// row store copy is already gone and gets served forever.
func TestSweepRacingCompactionBecomesTombstone(t *testing.T) {
	src, cs := newPair(t, "")
	src.SetDefaultRetention(isodur.MustParse("PT10M"))

	// One row already past retention, the rest comfortably inside it;
	// every bucket closed so the whole tail seals.
	if _, err := src.Append(obsAt("ap-1", "s1", "victim", sensor.ObsWiFiConnect, csNow.Add(-15*time.Minute), 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		at := csNow.Add(-5 * time.Minute).Add(time.Duration(i) * time.Second)
		if _, err := src.Append(obsAt("ap-1", "s1", fmt.Sprintf("u%d", i), sensor.ObsWiFiConnect, at, float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	swept := 0
	testHookAfterSnapshot = func() { swept = src.Sweep(csNow) }
	defer func() { testHookAfterSnapshot = nil }()
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	testHookAfterSnapshot = nil
	if swept != 1 {
		t.Fatalf("sweep removed %d rows mid-compaction, want 1", swept)
	}

	// The expired row is unreadable immediately, and the unified view
	// agrees with the row store (which no longer holds it).
	if rows := cs.Query(obstore.Filter{UserID: "victim"}); len(rows) != 0 {
		t.Fatalf("retention-expired row resurrected from segments: %d rows", len(rows))
	}
	if got, want := cs.Count(obstore.Filter{}), 8; got != want {
		t.Fatalf("unified count %d, want %d", got, want)
	}

	// The next compaction rewrites the touched segment and retires the
	// tombstone; the row stays gone.
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	if rows := cs.Query(obstore.Filter{UserID: "victim"}); len(rows) != 0 {
		t.Fatalf("expired row back after rewrite: %d rows", len(rows))
	}
	if st := cs.Stats(); st.SeqTombstones != 0 {
		t.Fatalf("seq tombstone not retired by rewrite: %+v", st)
	}
}

func TestErasureLeavesDisk(t *testing.T) {
	const marker = "ERASURE-MARKER-SUBJECT-7f3a"
	dir := t.TempDir()
	src, cs := newPair(t, dir)

	// Sealed rows for the marker subject interleaved with others.
	for i := 0; i < 120; i++ {
		user := marker
		if i%3 != 0 {
			user = fmt.Sprintf("u%d", i%4)
		}
		at := csNow.Add(-time.Duration(2+i%8) * time.Minute)
		if _, err := src.Append(obsAt(fmt.Sprintf("ap-%d", i%3), "s1", user, sensor.ObsWiFiConnect, at, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	if !dirContains(t, dir, marker) {
		t.Fatal("precondition: sealed segments should contain the subject's bytes")
	}

	if n := src.DeleteUser(marker); n == 0 {
		t.Fatal("DeleteUser removed nothing")
	}

	// Reads stop serving the subject immediately, before any rewrite.
	if rows := cs.Query(obstore.Filter{UserID: marker}); len(rows) != 0 {
		t.Fatalf("tombstoned subject still readable: %d rows", len(rows))
	}
	if entries, _, ok := cs.OccupancyRollup(time.Time{}, time.Time{}); ok {
		for _, e := range entries {
			if e.UserID == marker {
				t.Fatal("rollup cube still carries the erased subject")
			}
		}
	} else {
		t.Fatal("rollups unavailable")
	}

	// The tombstones themselves are durable (manifest) so a crash
	// between erasure and rewrite cannot resurrect the subject...
	if !dirContains(t, dir, marker) {
		t.Fatal("precondition: segments not yet rewritten")
	}
	reopened, err := Open(Config{Dir: dir, BucketDur: time.Minute, Clock: func() time.Time { return csNow }})
	if err != nil {
		t.Fatal(err)
	}
	if rows := reopened.Query(obstore.Filter{UserID: marker}); len(rows) != 0 {
		t.Fatalf("after reopen, tombstoned subject readable again: %d rows", len(rows))
	}

	// ...and the rewrite at the next compaction removes the bytes.
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	if dirContains(t, dir, marker) {
		t.Fatal("erased subject's bytes still on disk after rewrite")
	}
	if rows := cs.Query(obstore.Filter{UserID: marker}); len(rows) != 0 {
		t.Fatalf("erased subject readable after rewrite: %d rows", len(rows))
	}
	// Everyone else survived intact.
	want := src.Query(obstore.Filter{})
	got := cs.Query(obstore.Filter{})
	if len(got) != len(want) {
		t.Fatalf("rewrite lost bystander rows: %d vs %d", len(got), len(want))
	}
}

// dirContains reports whether any file under dir contains needle.
func dirContains(t *testing.T, dir, needle string) bool {
	t.Helper()
	found := false
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || found {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if bytes.Contains(data, []byte(needle)) {
			found = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}
