package colstore

// GDPR-erasure regression: DeleteUser must reach the columnar tier's
// disk, not just its indexes. The subject's rows are tombstoned the
// instant the row store drops them (reads agree immediately), and the
// next compaction rewrites every touched segment so the subject's
// marker bytes — row data and dictionary entries alike — are gone
// from the segment files and the manifest.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

func TestErasureLeavesDisk(t *testing.T) {
	const marker = "ERASURE-MARKER-SUBJECT-7f3a"
	dir := t.TempDir()
	src, cs := newPair(t, dir)

	// Sealed rows for the marker subject interleaved with others.
	for i := 0; i < 120; i++ {
		user := marker
		if i%3 != 0 {
			user = fmt.Sprintf("u%d", i%4)
		}
		at := csNow.Add(-time.Duration(2+i%8) * time.Minute)
		if _, err := src.Append(obsAt(fmt.Sprintf("ap-%d", i%3), "s1", user, sensor.ObsWiFiConnect, at, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	if !dirContains(t, dir, marker) {
		t.Fatal("precondition: sealed segments should contain the subject's bytes")
	}

	if n := src.DeleteUser(marker); n == 0 {
		t.Fatal("DeleteUser removed nothing")
	}

	// Reads stop serving the subject immediately, before any rewrite.
	if rows := cs.Query(obstore.Filter{UserID: marker}); len(rows) != 0 {
		t.Fatalf("tombstoned subject still readable: %d rows", len(rows))
	}
	if entries, _, ok := cs.OccupancyRollup(time.Time{}, time.Time{}); ok {
		for _, e := range entries {
			if e.UserID == marker {
				t.Fatal("rollup cube still carries the erased subject")
			}
		}
	} else {
		t.Fatal("rollups unavailable")
	}

	// The tombstones themselves are durable (manifest) so a crash
	// between erasure and rewrite cannot resurrect the subject...
	if !dirContains(t, dir, marker) {
		t.Fatal("precondition: segments not yet rewritten")
	}
	reopened, err := Open(Config{Dir: dir, BucketDur: time.Minute, Clock: func() time.Time { return csNow }})
	if err != nil {
		t.Fatal(err)
	}
	if rows := reopened.Query(obstore.Filter{UserID: marker}); len(rows) != 0 {
		t.Fatalf("after reopen, tombstoned subject readable again: %d rows", len(rows))
	}

	// ...and the rewrite at the next compaction removes the bytes.
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	if dirContains(t, dir, marker) {
		t.Fatal("erased subject's bytes still on disk after rewrite")
	}
	if rows := cs.Query(obstore.Filter{UserID: marker}); len(rows) != 0 {
		t.Fatalf("erased subject readable after rewrite: %d rows", len(rows))
	}
	// Everyone else survived intact.
	want := src.Query(obstore.Filter{})
	got := cs.Query(obstore.Filter{})
	if len(got) != len(want) {
		t.Fatalf("rewrite lost bystander rows: %d vs %d", len(got), len(want))
	}
}

// dirContains reports whether any file under dir contains needle.
func dirContains(t *testing.T, dir, needle string) bool {
	t.Helper()
	found := false
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || found {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if bytes.Contains(data, []byte(needle)) {
			found = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}
