package colstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/isodur"
	"github.com/tippers/tippers/internal/obstore"
	"github.com/tippers/tippers/internal/sensor"
)

// csNow is the tests' fixed "wall clock": everything timestamped
// before it lives in a closed bucket.
var csNow = time.Date(2026, 3, 14, 12, 0, 0, 0, time.UTC)

func obsAt(sensorID, space, user string, kind sensor.ObservationKind, at time.Time, value float64) sensor.Observation {
	return sensor.Observation{
		SensorID: sensorID, Kind: kind, Time: at, SpaceID: space,
		UserID: user, Value: value,
	}
}

// newPair wires an in-memory row store to a columnar tier with a
// fixed clock.
func newPair(t *testing.T, dir string) (*obstore.Store, *Store) {
	t.Helper()
	src := obstore.New()
	cs, err := Open(Config{Dir: dir, BucketDur: time.Minute, Clock: func() time.Time { return csNow }})
	if err != nil {
		t.Fatal(err)
	}
	cs.AttachStore(src)
	return src, cs
}

func TestSegmentRoundTrip(t *testing.T) {
	base := csNow.Add(-10 * time.Minute)
	var rows []sensor.Observation
	for i := 0; i < 200; i++ {
		o := obsAt(fmt.Sprintf("ap-%d", i%3), fmt.Sprintf("s%d", i%4), fmt.Sprintf("u%d", i%5),
			sensor.ObsWiFiConnect, base.Add(time.Duration(i)*100*time.Millisecond), float64(i)*1.5)
		o.Seq = uint64(i + 1)
		if i%7 == 0 {
			o.Kind = sensor.ObsPowerReading
			o.UserID = ""
			o.DeviceMAC = "aa:bb:cc"
			o.Payload = map[string]string{"unit": "W", "phase": "1"}
		}
		rows = append(rows, o)
	}
	sg, err := buildSegment(1, base.Truncate(time.Minute), rows)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeSegment(1, sg.encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.rows() != len(rows) {
		t.Fatalf("decoded %d rows, want %d", dec.rows(), len(rows))
	}
	for i, want := range rows {
		want.Time = want.Time.UTC()
		if got := dec.row(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if dec.minSeq != 1 || dec.maxSeq != 200 {
		t.Fatalf("zone map seq range [%d,%d], want [1,200]", dec.minSeq, dec.maxSeq)
	}
}

func TestSegmentDecodeRejectsCorruption(t *testing.T) {
	rows := []sensor.Observation{
		{Seq: 1, SensorID: "ap-1", Kind: sensor.ObsWiFiConnect, Time: csNow.Add(-time.Hour), SpaceID: "s1", UserID: "u1", Value: 1},
		{Seq: 2, SensorID: "ap-1", Kind: sensor.ObsWiFiConnect, Time: csNow.Add(-time.Hour), SpaceID: "s1", UserID: "u2", Value: 2},
	}
	sg, err := buildSegment(1, csNow.Add(-time.Hour).Truncate(time.Minute), rows)
	if err != nil {
		t.Fatal(err)
	}
	data := sg.encode()
	if _, err := decodeSegment(1, data); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if _, err := decodeSegment(1, mut); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := decodeSegment(1, data[:cut]); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
}

// TestUnifiedQueryMatchesStore is the core read-equivalence check:
// through ingest, compaction, retention sweeps, and erasure, the
// unified segments+tail view answers every filter exactly as the row
// store alone does.
func TestUnifiedQueryMatchesStore(t *testing.T) {
	src, cs := newPair(t, "")
	rng := rand.New(rand.NewSource(7))
	users := []string{"", "u0", "u1", "u2"}
	for i := 0; i < 600; i++ {
		at := csNow.Add(-time.Duration(1+rng.Intn(30)) * time.Minute).Add(time.Duration(rng.Intn(60000)) * time.Millisecond)
		kind := sensor.ObsWiFiConnect
		if i%5 == 0 {
			kind = sensor.ObsPowerReading
		}
		o := obsAt(fmt.Sprintf("ap-%d", rng.Intn(4)), fmt.Sprintf("s%d", rng.Intn(3)),
			users[rng.Intn(len(users))], kind, at, float64(rng.Intn(100)))
		if _, err := src.Append(o); err != nil {
			t.Fatal(err)
		}
	}

	check := func(stage string) {
		t.Helper()
		filters := []obstore.Filter{
			{},
			{SensorID: "ap-1"},
			{UserID: "u1"},
			{Kind: sensor.ObsPowerReading},
			{From: csNow.Add(-20 * time.Minute), To: csNow.Add(-5 * time.Minute)},
			{SpaceIDs: []string{"s0", "s2"}},
			{AfterSeq: 100},
			{AfterSeq: 100, Limit: 37},
			{Limit: 11},
			{SensorID: "ap-2", Kind: sensor.ObsWiFiConnect, From: csNow.Add(-25 * time.Minute)},
		}
		for fi, f := range filters {
			want := src.Query(f)
			got := cs.Query(f)
			if !reflect.DeepEqual(normTimes(got), normTimes(want)) {
				t.Fatalf("%s: filter %d: unified query diverged (%d rows vs %d)", stage, fi, len(got), len(want))
			}
			fc := f
			fc.Limit = 0
			if gn, wn := cs.Count(fc), src.Count(fc); gn != wn {
				t.Fatalf("%s: filter %d: Count = %d, store says %d", stage, fi, gn, wn)
			}
		}
	}

	check("before compaction")
	n, err := cs.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("compaction sealed nothing")
	}
	if cs.Watermark() == 0 {
		t.Fatal("watermark did not advance")
	}
	check("after compaction")

	// More ingest above the watermark, then another pass.
	for i := 0; i < 100; i++ {
		o := obsAt("ap-9", "s1", "u0", sensor.ObsWiFiConnect,
			csNow.Add(-time.Duration(1+rng.Intn(4))*time.Minute), float64(i))
		if _, err := src.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	check("after more ingest")
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	check("after second compaction")

	// Erasure: sealed rows become tombstones and both views agree
	// immediately, before any rewrite happens.
	if n := src.DeleteUser("u1"); n == 0 {
		t.Fatal("DeleteUser removed nothing")
	}
	check("after erasure")
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	check("after tombstone rewrite")
	if st := cs.Stats(); st.SeqTombstones != 0 || st.UserTombstones != 0 {
		t.Fatalf("tombstones not retired by rewrite: %+v", st)
	}

	// Retention sweep path too.
	src.SetDefaultRetention(isodur.MustParse("PT10M"))
	if n := src.Sweep(csNow); n == 0 {
		t.Fatal("sweep removed nothing")
	}
	check("after sweep")
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	check("after sweep rewrite")
}

// normTimes UTC-normalizes observation times: the codec stores unix
// nanos, so location (not instant) may differ from the row store.
func normTimes(rows []sensor.Observation) []sensor.Observation {
	out := make([]sensor.Observation, len(rows))
	for i, o := range rows {
		o.Time = o.Time.UTC()
		out[i] = o
	}
	return out
}

func TestOpenBucketFencesWatermark(t *testing.T) {
	src, cs := newPair(t, "")
	// Two rows in a closed bucket, one in the currently open bucket,
	// then another closed-bucket row *after* it in seq order: the open
	// bucket must fence the watermark below all of them.
	closedAt := csNow.Add(-5 * time.Minute)
	openAt := csNow // csNow's own minute: bucket ends after now, still open
	for _, at := range []time.Time{closedAt, closedAt.Add(time.Second), openAt, closedAt.Add(2 * time.Second)} {
		if _, err := src.Append(obsAt("ap-1", "s1", "u1", sensor.ObsWiFiConnect, at, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	if wm := cs.Watermark(); wm != 2 {
		t.Fatalf("watermark = %d, want 2 (open bucket at seq 3 fences seq 4)", wm)
	}
	if got, want := cs.Query(obstore.Filter{}), src.Query(obstore.Filter{}); !reflect.DeepEqual(normTimes(got), normTimes(want)) {
		t.Fatalf("unified view diverged: %d rows vs %d", len(got), len(want))
	}
}

func TestDurableReopen(t *testing.T) {
	dir := t.TempDir()
	src, cs := newPair(t, dir)
	for i := 0; i < 50; i++ {
		at := csNow.Add(-time.Duration(2+i%6) * time.Minute)
		if _, err := src.Append(obsAt(fmt.Sprintf("ap-%d", i%2), "s1", fmt.Sprintf("u%d", i%3), sensor.ObsWiFiConnect, at, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	wantSegs := cs.Segments()
	wantWM := cs.Watermark()

	cs2, err := Open(Config{Dir: dir, BucketDur: time.Minute, Clock: func() time.Time { return csNow }})
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Watermark() != wantWM {
		t.Fatalf("reopened watermark = %d, want %d", cs2.Watermark(), wantWM)
	}
	gotSegs := cs2.Segments()
	if !reflect.DeepEqual(gotSegs, wantSegs) {
		t.Fatalf("reopened segments diverged:\n got %+v\nwant %+v", gotSegs, wantSegs)
	}
	// Segment-only reads work without a row store attached.
	if n := len(cs2.Query(obstore.Filter{})); n != 50 {
		t.Fatalf("segment-only query returned %d rows, want 50", n)
	}
}

func TestRollupsMatchGroundTruth(t *testing.T) {
	src, cs := newPair(t, "")
	rng := rand.New(rand.NewSource(11))
	type key struct {
		minute int64
		space  string
		kind   sensor.ObservationKind
		user   string
	}
	want := map[key]int{}
	for i := 0; i < 400; i++ {
		at := csNow.Add(-time.Duration(1+rng.Intn(10)) * time.Minute).Add(time.Duration(rng.Intn(60)) * time.Second)
		o := obsAt(fmt.Sprintf("ap-%d", rng.Intn(3)), fmt.Sprintf("s%d", rng.Intn(3)),
			fmt.Sprintf("u%d", rng.Intn(4)), sensor.ObsWiFiConnect, at, float64(rng.Intn(50)))
		stored, err := src.Append(o)
		if err != nil {
			t.Fatal(err)
		}
		want[key{at.Truncate(time.Minute).UnixNano(), o.SpaceID, o.Kind, o.UserID}]++
		_ = stored
	}
	verify := func(stage string) {
		t.Helper()
		entries, _, ok := cs.OccupancyRollup(time.Time{}, time.Time{})
		if !ok {
			t.Fatalf("%s: rollups unavailable", stage)
		}
		got := map[key]int{}
		for _, e := range entries {
			got[key{e.Minute.UnixNano(), e.SpaceID, e.Kind, e.UserID}] = e.Count
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: occupancy cube diverged from ground truth (%d vs %d cells)", stage, len(got), len(want))
		}
	}
	verify("live-fed")

	if _, err := cs.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	verify("after compaction")

	// Deletion dirties buckets; the next read self-repairs.
	src.DeleteUser("u2")
	for k := range want {
		if k.user == "u2" {
			delete(want, k)
		}
	}
	verify("after erasure")

	// Readings cube: spot-check sums against a scan.
	rdEntries, _, ok := cs.ReadingsRollup(time.Time{}, time.Time{})
	if !ok {
		t.Fatal("readings rollup unavailable")
	}
	var cubeSum, scanSum float64
	var cubeN, scanN int
	for _, e := range rdEntries {
		cubeSum += e.Sum
		cubeN += e.Count
	}
	for _, o := range src.Query(obstore.Filter{}) {
		scanSum += o.Value
		scanN++
	}
	if cubeN != scanN || cubeSum != scanSum {
		t.Fatalf("readings cube count/sum = %d/%.1f, scan says %d/%.1f", cubeN, cubeSum, scanN, scanSum)
	}
}

func TestRollupOverflowDisables(t *testing.T) {
	src := obstore.New()
	cs, err := Open(Config{BucketDur: time.Minute, Clock: func() time.Time { return csNow }, RollupMaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	cs.AttachStore(src)
	for i := 0; i < 100; i++ {
		at := csNow.Add(-time.Duration(1+i) * time.Minute)
		if _, err := src.Append(obsAt(fmt.Sprintf("ap-%d", i), fmt.Sprintf("s%d", i), fmt.Sprintf("u%d", i), sensor.ObsWiFiConnect, at, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := cs.OccupancyRollup(time.Time{}, time.Time{}); ok {
		t.Fatal("overflowed cube still serving answers")
	}
	if !cs.Stats().RollupDisabled {
		t.Fatal("stats do not report rollups disabled")
	}
}

func TestEpochInvalidation(t *testing.T) {
	_, cs := newPair(t, "")
	e0 := cs.Epoch()
	cs.Invalidate()
	cs.Invalidate()
	if got := cs.Epoch(); got != e0+2 {
		t.Fatalf("epoch = %d, want %d", got, e0+2)
	}
}
