// Package service implements the paper's service model (§IV.A.6):
// services that run on top of the smart building system, their
// meta-data ("the developer (e.g., building owner or third party),
// permissions to sensors, and observations"), and the registry TIPPERS
// consults when a service requests data.
//
// A service must declare what it observes and why. The request
// manager rejects any request outside a service's declaration
// (purpose binding), so a service cannot quietly repurpose data it
// was granted for something else — the paper's WiFi-log example of
// one collection serving many purposes is only legal if every purpose
// is declared.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

// Developer identifies who operates a service, which the paper calls
// out as user-relevant metadata (building services vs third parties).
type Developer string

// Developer classes.
const (
	DeveloperBuilding   Developer = "building"
	DeveloperThirdParty Developer = "third-party"
)

// DataRequest is one declared data need: what kind of observation,
// for which purpose, at what finest granularity.
type DataRequest struct {
	ObsKind     sensor.ObservationKind
	Purpose     policy.Purpose
	Granularity policy.Granularity
	Description string
}

// Service is one registered service.
type Service struct {
	ID          string
	Name        string
	Description string
	Developer   Developer
	// Declares is the service's declared data needs; requests outside
	// it are rejected.
	Declares []DataRequest
}

// Check validates the declaration.
func (s Service) Check() error {
	if s.ID == "" {
		return errors.New("service: ID must be non-empty")
	}
	if s.Developer != DeveloperBuilding && s.Developer != DeveloperThirdParty {
		return fmt.Errorf("service %s: invalid developer %q", s.ID, s.Developer)
	}
	if len(s.Declares) == 0 {
		return fmt.Errorf("service %s: must declare at least one data need", s.ID)
	}
	for i, d := range s.Declares {
		if d.ObsKind == "" {
			return fmt.Errorf("service %s: declaration %d has no observation kind", s.ID, i)
		}
		if d.Purpose == policy.PurposeAny {
			return fmt.Errorf("service %s: declaration %d has no purpose", s.ID, i)
		}
		if !d.Granularity.Valid() {
			return fmt.Errorf("service %s: declaration %d has invalid granularity", s.ID, i)
		}
	}
	return nil
}

// Permits reports whether the service declared the given kind/purpose
// combination, and at what granularity.
func (s Service) Permits(kind sensor.ObservationKind, purpose policy.Purpose) (policy.Granularity, bool) {
	for _, d := range s.Declares {
		if d.ObsKind == kind && d.Purpose == purpose {
			return d.Granularity, true
		}
	}
	return 0, false
}

// PolicyDoc renders the service's declaration in the paper's Figure 3
// shape for IRR advertisement.
func (s Service) PolicyDoc() policy.ServicePolicyDoc {
	doc := policy.ServicePolicyDoc{
		Purpose: policy.PurposeBlock{
			Entries:   map[policy.Purpose]policy.PurposeDetail{},
			ServiceID: s.ID,
		},
	}
	seen := map[sensor.ObservationKind]bool{}
	for _, d := range s.Declares {
		if !seen[d.ObsKind] {
			seen[d.ObsKind] = true
			doc.Observations = append(doc.Observations, policy.ObservationDesc{
				Name:        string(d.ObsKind),
				Description: d.Description,
				Granularity: d.Granularity.String(),
			})
		}
		if _, ok := doc.Purpose.Entries[d.Purpose]; !ok {
			desc := s.Description
			if d.Description != "" {
				desc = d.Description
			}
			doc.Purpose.Entries[d.Purpose] = policy.PurposeDetail{Description: desc}
		}
	}
	sort.Slice(doc.Observations, func(i, j int) bool {
		return doc.Observations[i].Name < doc.Observations[j].Name
	})
	return doc
}

// Registry holds the building's registered services. It is safe for
// concurrent use.
type Registry struct {
	mu   sync.RWMutex
	byID map[string]Service
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]Service)}
}

// Errors returned by Registry operations.
var (
	ErrDuplicateService = errors.New("service: duplicate service ID")
	ErrUnknownService   = errors.New("service: unknown service")
)

// Register validates and adds a service.
func (r *Registry) Register(s Service) error {
	if err := s.Check(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[s.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateService, s.ID)
	}
	r.byID[s.ID] = s
	return nil
}

// MustRegister is Register for known-good built-ins.
func (r *Registry) MustRegister(s Service) Service {
	if err := r.Register(s); err != nil {
		panic(err)
	}
	return s
}

// Get returns the service with the given ID.
func (r *Registry) Get(id string) (Service, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byID[id]
	return s, ok
}

// All returns every service sorted by ID.
func (r *Registry) All() []Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Service, 0, len(r.byID))
	for _, s := range r.byID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// The paper's DBH services.

// Concierge is the paper's Smart Concierge: "helps users locate
// rooms, inhabitants and events in the building", using WiFi and BLE
// location (Figure 3).
func Concierge() Service {
	return Service{
		ID:          "concierge",
		Name:        "Smart Concierge",
		Description: "Helps users locate rooms, inhabitants, and events in the building.",
		Developer:   DeveloperBuilding,
		Declares: []DataRequest{
			{
				ObsKind:     sensor.ObsWiFiConnect,
				Purpose:     policy.PurposeProvidingService,
				Granularity: policy.GranExact,
				Description: "Whenever one of your devices connects to the DBH WiFi its MAC address is stored",
			},
			{
				ObsKind:     sensor.ObsBLESighting,
				Purpose:     policy.PurposeProvidingService,
				Granularity: policy.GranExact,
				Description: "When you have Concierge installed and your bluetooth senses a beacon, the room you are in is stored",
			},
		},
	}
}

// SmartMeeting is the paper's Smart Meeting service: "can help
// organize meetings more efficiently", needing participant locations
// and occupancy.
func SmartMeeting() Service {
	return Service{
		ID:          "smart-meeting",
		Name:        "Smart Meeting",
		Description: "Helps organize meetings more efficiently using participant availability and room occupancy.",
		Developer:   DeveloperBuilding,
		Declares: []DataRequest{
			{
				ObsKind:     sensor.ObsBLESighting,
				Purpose:     policy.PurposeProvidingService,
				Granularity: policy.GranRoom,
				Description: "Participant room-level presence to find meeting slots and rooms",
			},
			{
				ObsKind:     sensor.ObsOccupancy,
				Purpose:     policy.PurposeProvidingService,
				Granularity: policy.GranRoom,
				Description: "Meeting room occupancy to avoid double-booking",
			},
		},
	}
}

// FoodDelivery is the paper's third-party example: "a food delivery
// company can automatically locate and deliver food to building
// inhabitants during lunch time."
func FoodDelivery() Service {
	return Service{
		ID:          "food-delivery",
		Name:        "Lunch Locator",
		Description: "Locates subscribers at lunch time to deliver food.",
		Developer:   DeveloperThirdParty,
		Declares: []DataRequest{
			{
				ObsKind:     sensor.ObsWiFiConnect,
				Purpose:     policy.PurposeProvidingService,
				Granularity: policy.GranFloor,
				Description: "Subscriber floor-level location during lunch hours",
			},
		},
	}
}
