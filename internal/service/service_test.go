package service

import (
	"errors"
	"testing"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
)

func TestBuiltinsValid(t *testing.T) {
	for _, s := range []Service{Concierge(), SmartMeeting(), FoodDelivery()} {
		if err := s.Check(); err != nil {
			t.Errorf("%s: %v", s.ID, err)
		}
	}
	if FoodDelivery().Developer != DeveloperThirdParty {
		t.Error("food delivery must be third-party")
	}
	if Concierge().Developer != DeveloperBuilding {
		t.Error("concierge must be a building service")
	}
}

func TestCheckRejectsBadDeclarations(t *testing.T) {
	base := Concierge()
	tests := []struct {
		name   string
		mutate func(*Service)
	}{
		{"empty ID", func(s *Service) { s.ID = "" }},
		{"bad developer", func(s *Service) { s.Developer = "shadowy" }},
		{"no declarations", func(s *Service) { s.Declares = nil }},
		{"declaration without kind", func(s *Service) { s.Declares[0].ObsKind = "" }},
		{"declaration without purpose", func(s *Service) { s.Declares[0].Purpose = policy.PurposeAny }},
		{"invalid granularity", func(s *Service) { s.Declares[0].Granularity = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base
			s.Declares = append([]DataRequest(nil), base.Declares...)
			tt.mutate(&s)
			if err := s.Check(); err == nil {
				t.Error("Check accepted invalid service")
			}
		})
	}
}

func TestPermits(t *testing.T) {
	c := Concierge()
	g, ok := c.Permits(sensor.ObsWiFiConnect, policy.PurposeProvidingService)
	if !ok || g != policy.GranExact {
		t.Errorf("Permits(wifi, providing_service) = %v, %v", g, ok)
	}
	if _, ok := c.Permits(sensor.ObsWiFiConnect, policy.PurposeMarketing); ok {
		t.Error("undeclared purpose permitted: purpose binding broken")
	}
	if _, ok := c.Permits(sensor.ObsPowerReading, policy.PurposeProvidingService); ok {
		t.Error("undeclared kind permitted")
	}
}

func TestPolicyDocMatchesFigure3(t *testing.T) {
	doc := Concierge().PolicyDoc()
	if err := doc.Validate(); err != nil {
		t.Fatalf("Concierge policy doc invalid: %v", err)
	}
	if doc.Purpose.ServiceID != "concierge" {
		t.Errorf("service_id = %q", doc.Purpose.ServiceID)
	}
	if len(doc.Observations) != 2 {
		t.Fatalf("observations = %+v", doc.Observations)
	}
	// Sorted: bluetooth_beacon before wifi_access_point.
	if doc.Observations[0].Name != string(sensor.ObsBLESighting) ||
		doc.Observations[1].Name != string(sensor.ObsWiFiConnect) {
		t.Errorf("observation order = %+v", doc.Observations)
	}
	if _, ok := doc.Purpose.Entries[policy.PurposeProvidingService]; !ok {
		t.Errorf("purpose entries = %+v", doc.Purpose.Entries)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Concierge())
	r.MustRegister(SmartMeeting())
	if err := r.Register(Concierge()); !errors.Is(err, ErrDuplicateService) {
		t.Errorf("duplicate register: %v", err)
	}
	if err := r.Register(Service{}); err == nil {
		t.Error("invalid service registered")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if _, ok := r.Get("concierge"); !ok {
		t.Error("Get(concierge) failed")
	}
	if _, ok := r.Get("ghost"); ok {
		t.Error("Get(ghost) succeeded")
	}
	all := r.All()
	if len(all) != 2 || all[0].ID != "concierge" || all[1].ID != "smart-meeting" {
		t.Errorf("All() = %+v", all)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister(invalid) did not panic")
		}
	}()
	NewRegistry().MustRegister(Service{ID: "x"})
}
