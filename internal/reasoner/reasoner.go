// Package reasoner implements the paper's policy reasoner: "It is
// possible that user preferences conflict with the existing building
// policies (e.g., Policy 2 and Preference 2). These conflicts should
// be detected by the smart building management system (e.g., with the
// help of a policy reasoner) which is in charge of enforcing the
// policies by resolving these conflicts while informing users about
// it through the personal privacy assistant." (§III.B)
//
// The reasoner detects two conflict classes — building policy vs user
// preference, and preference vs preference — and resolves each under
// a configurable strategy. Resolutions carry a notification flag so
// the BMS can inform the affected user's IoTA whenever a building
// override wins.
package reasoner

import (
	"fmt"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/spatial"
	"github.com/tippers/tippers/internal/telemetry"
)

// ConflictKind classifies a detected conflict.
type ConflictKind int

// Conflict kinds.
const (
	// PolicyVsPreference: a building policy mandates a flow a user
	// preference restricts (Policy 2 vs Preference 2).
	PolicyVsPreference ConflictKind = iota + 1
	// PreferenceVsPreference: two rules from the same user overlap
	// with different outcomes (e.g. a learned rule contradicting an
	// explicit one).
	PreferenceVsPreference
)

// String returns a short kind name.
func (k ConflictKind) String() string {
	switch k {
	case PolicyVsPreference:
		return "policy-vs-preference"
	case PreferenceVsPreference:
		return "preference-vs-preference"
	default:
		return fmt.Sprintf("ConflictKind(%d)", int(k))
	}
}

// Strategy selects how conflicts are resolved.
type Strategy int

// Resolution strategies.
const (
	// MostRestrictive releases the least information either side
	// permits — the default, matching privacy-by-design. Building
	// overrides (safety-critical) still win, with notification.
	MostRestrictive Strategy = iota + 1
	// BuildingWins always applies the building's rule.
	BuildingWins
	// UserWins always applies the user's rule, even over building
	// overrides (useful for what-if analysis; a real deployment keeps
	// safety overrides).
	UserWins
	// NegotiateGranularity releases at the finest granularity both
	// sides accept, converting hard denies into the coarsest
	// releasable level when the building needs some signal.
	NegotiateGranularity
)

// String returns a short strategy name.
func (s Strategy) String() string {
	switch s {
	case MostRestrictive:
		return "most-restrictive"
	case BuildingWins:
		return "building-wins"
	case UserWins:
		return "user-wins"
	case NegotiateGranularity:
		return "negotiate-granularity"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Resolution is the outcome of resolving one conflict.
type Resolution struct {
	// Winner is "building", "user", or "merged".
	Winner string
	// EffectiveRule is the rule enforcement applies to flows in the
	// conflicted scope intersection.
	EffectiveRule policy.Rule
	// OverrideApplied reports that a safety-critical building policy
	// was enforced over the user's preference; the user must be
	// notified (Figure 1 step 7 via the IoTA).
	OverrideApplied bool
	// NotifyUserID names the user whose IoTA should be informed, if
	// any.
	NotifyUserID string
	Explanation  string
}

// Conflict is one detected incompatibility, with its resolution.
type Conflict struct {
	Kind ConflictKind

	// PolicyVsPreference fields.
	PolicyID string

	// The user preference side (both kinds).
	PreferenceID string
	UserID       string

	// PreferenceVsPreference second rule.
	OtherPreferenceID string

	Resolution Resolution
}

// Reasoner detects and resolves conflicts. The zero value is not
// usable; construct with New.
type Reasoner struct {
	spaces   *spatial.Model
	strategy Strategy

	// Detection counters by conflict kind plus pass timing, exposed
	// via RegisterMetrics.
	policyVsPref  *telemetry.Counter
	prefVsPref    *telemetry.Counter
	detectSeconds *telemetry.Histogram
}

// New returns a reasoner resolving under the given strategy over the
// given spatial model (nil is allowed: spatial scope comparison is
// then exact-ID).
func New(spaces *spatial.Model, strategy Strategy) *Reasoner {
	if strategy == 0 {
		strategy = MostRestrictive
	}
	return &Reasoner{
		spaces:        spaces,
		strategy:      strategy,
		policyVsPref:  telemetry.NewCounter(),
		prefVsPref:    telemetry.NewCounter(),
		detectSeconds: telemetry.NewHistogram(nil),
	}
}

// RegisterMetrics exposes conflict-detection counters (by conflict
// kind) and detection-pass latency on a telemetry registry — the E3
// experiment's cost metric, live.
func (r *Reasoner) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFuncWith("tippers_reasoner_conflicts_total",
		"Conflicts detected, by kind.",
		telemetry.Labels{"kind": PolicyVsPreference.String()},
		func() float64 { return float64(r.policyVsPref.Value()) })
	reg.CounterFuncWith("tippers_reasoner_conflicts_total",
		"Conflicts detected, by kind.",
		telemetry.Labels{"kind": PreferenceVsPreference.String()},
		func() float64 { return float64(r.prefVsPref.Value()) })
	reg.RegisterHistogram("tippers_reasoner_detect_seconds",
		"Full conflict-detection pass latency.", nil, r.detectSeconds)
}

// Strategy returns the reasoner's resolution strategy.
func (r *Reasoner) Strategy() Strategy { return r.strategy }

// Detect finds every conflict between the building's policies and the
// installed preferences, plus intra-user preference contradictions,
// resolving each. Results are sorted for deterministic output.
func (r *Reasoner) Detect(policies []policy.BuildingPolicy, prefs []policy.Preference) []Conflict {
	t0 := time.Now()
	defer r.detectSeconds.ObserveSince(t0)
	var out []Conflict
	for _, bp := range policies {
		if bp.Kind != policy.KindCollection && bp.Kind != policy.KindDisclosure {
			// Automation and access-control policies do not release
			// user data flows that preferences govern.
			continue
		}
		for _, pref := range prefs {
			if c, ok := r.policyPreferenceConflict(bp, pref); ok {
				r.policyVsPref.Inc()
				out = append(out, c)
			}
		}
	}
	byUser := make(map[string][]policy.Preference)
	for _, p := range prefs {
		byUser[p.UserID] = append(byUser[p.UserID], p)
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		list := byUser[u]
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				if c, ok := r.preferencePairConflict(list[i], list[j]); ok {
					r.prefVsPref.Inc()
					out = append(out, c)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PolicyID != b.PolicyID {
			return a.PolicyID < b.PolicyID
		}
		if a.PreferenceID != b.PreferenceID {
			return a.PreferenceID < b.PreferenceID
		}
		return a.OtherPreferenceID < b.OtherPreferenceID
	})
	return out
}

// policyPreferenceConflict checks one policy/preference pair.
func (r *Reasoner) policyPreferenceConflict(bp policy.BuildingPolicy, pref policy.Preference) (Conflict, bool) {
	// A preference conflicts with a collection/disclosure policy when
	// it restricts (denies or limits) flows inside the policy's scope.
	if pref.Rule.Action == policy.ActionAllow {
		return Conflict{}, false
	}
	if !bp.Scope.Overlaps(pref.Scope, r.spaces) {
		return Conflict{}, false
	}
	c := Conflict{
		Kind:         PolicyVsPreference,
		PolicyID:     bp.ID,
		PreferenceID: pref.ID,
		UserID:       pref.UserID,
	}
	c.Resolution = r.resolvePolicyPreference(bp, pref)
	return c, true
}

func (r *Reasoner) resolvePolicyPreference(bp policy.BuildingPolicy, pref policy.Preference) Resolution {
	buildingRule := policy.Rule{Action: policy.ActionAllow}
	switch r.strategy {
	case BuildingWins:
		return Resolution{
			Winner:        "building",
			EffectiveRule: buildingRule,
			Explanation:   fmt.Sprintf("strategy %s: building policy %s applies", r.strategy, bp.ID),
		}
	case UserWins:
		return Resolution{
			Winner:        "user",
			EffectiveRule: pref.Rule,
			Explanation:   fmt.Sprintf("strategy %s: preference %s applies", r.strategy, pref.ID),
		}
	case NegotiateGranularity:
		if bp.Override {
			return r.overrideResolution(bp, pref)
		}
		g := policy.GranBuilding
		if pref.Rule.Action == policy.ActionLimit && pref.Rule.MaxGranularity.Valid() {
			g = pref.Rule.MaxGranularity
		}
		return Resolution{
			Winner:        "merged",
			EffectiveRule: policy.Rule{Action: policy.ActionLimit, MaxGranularity: g},
			NotifyUserID:  pref.UserID,
			Explanation: fmt.Sprintf("negotiated release at %s granularity between policy %s and preference %s",
				g, bp.ID, pref.ID),
		}
	default: // MostRestrictive
		if bp.Override {
			return r.overrideResolution(bp, pref)
		}
		return Resolution{
			Winner:        "user",
			EffectiveRule: pref.Rule,
			Explanation: fmt.Sprintf("most-restrictive: preference %s restricts policy %s and the policy is not safety-critical",
				pref.ID, bp.ID),
		}
	}
}

func (r *Reasoner) overrideResolution(bp policy.BuildingPolicy, pref policy.Preference) Resolution {
	return Resolution{
		Winner:          "building",
		EffectiveRule:   policy.Rule{Action: policy.ActionAllow},
		OverrideApplied: true,
		NotifyUserID:    pref.UserID,
		Explanation: fmt.Sprintf("building policy %s is safety-critical and overrides preference %s; user %s is notified",
			bp.ID, pref.ID, pref.UserID),
	}
}

// preferencePairConflict checks two same-user preferences for
// contradiction: overlapping scopes with rules where one permits
// strictly more than the other.
func (r *Reasoner) preferencePairConflict(a, b policy.Preference) (Conflict, bool) {
	if !a.Scope.Overlaps(b.Scope, r.spaces) {
		return Conflict{}, false
	}
	if a.Rule == b.Rule {
		return Conflict{}, false
	}
	// Identical actions with identical parameters were handled above;
	// anything else on an overlapping scope is ambiguous for the
	// enforcement engine and gets merged.
	merged := CombineRules(a.Rule, b.Rule)
	c := Conflict{
		Kind:              PreferenceVsPreference,
		PreferenceID:      a.ID,
		OtherPreferenceID: b.ID,
		UserID:            a.UserID,
		Resolution: Resolution{
			Winner:        "merged",
			EffectiveRule: merged,
			Explanation: fmt.Sprintf("preferences %s and %s overlap; enforcing the most restrictive combination",
				a.ID, b.ID),
		},
	}
	return c, true
}

// CombineRules merges rules most-restrictively: any deny wins; any
// limit beats allow; limits combine by taking the coarsest
// granularity cap, the smallest positive epsilon, and the largest
// aggregation floor. The enforcement engine uses it to collapse every
// preference matching a request into one effective rule.
func CombineRules(rules ...policy.Rule) policy.Rule {
	if len(rules) == 0 {
		return policy.Rule{Action: policy.ActionAllow}
	}
	out := policy.Rule{Action: policy.ActionAllow}
	for _, r := range rules {
		switch r.Action {
		case policy.ActionDeny:
			return policy.Rule{Action: policy.ActionDeny}
		case policy.ActionLimit:
			if out.Action != policy.ActionLimit {
				out = policy.Rule{Action: policy.ActionLimit, MaxGranularity: r.MaxGranularity, NoiseEpsilon: r.NoiseEpsilon, MinAggregationK: r.MinAggregationK}
				continue
			}
			if r.MaxGranularity.Valid() {
				if !out.MaxGranularity.Valid() {
					out.MaxGranularity = r.MaxGranularity
				} else {
					out.MaxGranularity = out.MaxGranularity.Min(r.MaxGranularity)
				}
			}
			if r.NoiseEpsilon > 0 && (out.NoiseEpsilon == 0 || r.NoiseEpsilon < out.NoiseEpsilon) {
				out.NoiseEpsilon = r.NoiseEpsilon
			}
			if r.MinAggregationK > out.MinAggregationK {
				out.MinAggregationK = r.MinAggregationK
			}
		}
	}
	return out
}
