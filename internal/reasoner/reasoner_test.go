package reasoner

import (
	"testing"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

func testModel(t testing.TB) *spatial.Model {
	t.Helper()
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	m.MustAdd("dbh", spatial.Space{ID: "dbh/2", Kind: spatial.KindFloor, Floor: 2})
	m.MustAdd("dbh/2", spatial.Space{ID: "dbh/2/2065", Kind: spatial.KindRoom, Floor: 2})
	return m
}

// TestPaperConflictPolicy2VsPreference2 reproduces the paper's §III.B
// example: Policy 2 (emergency location collection, override) clashes
// with Preference 2 (no location sharing). The building must win with
// user notification.
func TestPaperConflictPolicy2VsPreference2(t *testing.T) {
	r := New(testModel(t), MostRestrictive)
	p2 := policy.Policy2EmergencyLocation("dbh")
	prefs := policy.Preference2NoLocation("mary")

	conflicts := r.Detect([]policy.BuildingPolicy{p2}, prefs)
	// Preference 2 produces one deny per location-bearing kind; the
	// WiFi one conflicts with Policy 2 (the BLE one does not overlap
	// Policy 2's WiFi scope).
	var hit *Conflict
	for i := range conflicts {
		if conflicts[i].Kind == PolicyVsPreference && conflicts[i].PolicyID == p2.ID {
			hit = &conflicts[i]
		}
	}
	if hit == nil {
		t.Fatalf("no policy-vs-preference conflict detected: %+v", conflicts)
	}
	res := hit.Resolution
	if res.Winner != "building" || !res.OverrideApplied {
		t.Errorf("resolution = %+v, want building override", res)
	}
	if res.NotifyUserID != "mary" {
		t.Errorf("user not notified: %+v", res)
	}
	if res.EffectiveRule.Action != policy.ActionAllow {
		t.Errorf("effective rule = %+v, want allow (collection proceeds)", res.EffectiveRule)
	}
}

func TestNonOverridePolicyLosesToPreference(t *testing.T) {
	r := New(testModel(t), MostRestrictive)
	bp := policy.Policy2EmergencyLocation("dbh")
	bp.Override = false
	bp.Scope.Purposes = []policy.Purpose{policy.PurposeAnalytics}
	bp.ID = "policy-analytics"
	pref := policy.Preference{
		ID:     "pref-deny",
		UserID: "mary",
		Scope:  policy.Scope{ObsKind: sensor.ObsWiFiConnect},
		Rule:   policy.Rule{Action: policy.ActionDeny},
	}
	conflicts := r.Detect([]policy.BuildingPolicy{bp}, []policy.Preference{pref})
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	res := conflicts[0].Resolution
	if res.Winner != "user" || res.OverrideApplied {
		t.Errorf("resolution = %+v, want user wins", res)
	}
	if res.EffectiveRule.Action != policy.ActionDeny {
		t.Errorf("effective rule = %+v", res.EffectiveRule)
	}
}

func TestAllowPreferenceDoesNotConflict(t *testing.T) {
	r := New(testModel(t), MostRestrictive)
	bp := policy.Policy2EmergencyLocation("dbh")
	pref := policy.Preference{
		ID:     "pref-allow",
		UserID: "mary",
		Scope:  policy.Scope{ObsKind: sensor.ObsWiFiConnect},
		Rule:   policy.Rule{Action: policy.ActionAllow},
	}
	if got := r.Detect([]policy.BuildingPolicy{bp}, []policy.Preference{pref}); len(got) != 0 {
		t.Errorf("allow preference flagged: %+v", got)
	}
}

func TestAutomationPoliciesSkipped(t *testing.T) {
	r := New(testModel(t), MostRestrictive)
	p1 := policy.Policy1Comfort("dbh", 70)
	prefs := policy.Preference2NoLocation("mary")
	for _, c := range r.Detect([]policy.BuildingPolicy{p1}, prefs) {
		if c.PolicyID == p1.ID {
			t.Errorf("automation policy flagged: %+v", c)
		}
	}
}

func TestDisjointScopesNoConflict(t *testing.T) {
	r := New(testModel(t), MostRestrictive)
	bp := policy.Policy2EmergencyLocation("dbh") // WiFi scope
	pref := policy.Preference{
		ID:     "pref-ble",
		UserID: "mary",
		Scope:  policy.Scope{ObsKind: sensor.ObsBLESighting},
		Rule:   policy.Rule{Action: policy.ActionDeny},
	}
	if got := r.Detect([]policy.BuildingPolicy{bp}, []policy.Preference{pref}); len(got) != 0 {
		t.Errorf("disjoint scopes flagged: %+v", got)
	}
}

func TestStrategies(t *testing.T) {
	bp := policy.Policy2EmergencyLocation("dbh")
	bp.Override = false
	bp.Scope.Purposes = []policy.Purpose{policy.PurposeLogging}
	pref := policy.Preference{
		ID:     "pref-coarse",
		UserID: "mary",
		Scope:  policy.Scope{ObsKind: sensor.ObsWiFiConnect},
		Rule:   policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranFloor},
	}
	run := func(s Strategy) Resolution {
		r := New(testModel(t), s)
		conflicts := r.Detect([]policy.BuildingPolicy{bp}, []policy.Preference{pref})
		if len(conflicts) != 1 {
			t.Fatalf("strategy %v: conflicts = %+v", s, conflicts)
		}
		return conflicts[0].Resolution
	}
	if res := run(BuildingWins); res.Winner != "building" || res.EffectiveRule.Action != policy.ActionAllow {
		t.Errorf("BuildingWins = %+v", res)
	}
	if res := run(UserWins); res.Winner != "user" || res.EffectiveRule.MaxGranularity != policy.GranFloor {
		t.Errorf("UserWins = %+v", res)
	}
	if res := run(MostRestrictive); res.Winner != "user" {
		t.Errorf("MostRestrictive = %+v", res)
	}
	if res := run(NegotiateGranularity); res.Winner != "merged" ||
		res.EffectiveRule.Action != policy.ActionLimit ||
		res.EffectiveRule.MaxGranularity != policy.GranFloor {
		t.Errorf("NegotiateGranularity = %+v", res)
	}
}

func TestNegotiateWithDenyFallsBackToBuildingGranularity(t *testing.T) {
	bp := policy.Policy2EmergencyLocation("dbh")
	bp.Override = false
	bp.Scope.Purposes = []policy.Purpose{policy.PurposeLogging}
	pref := policy.Preference{
		ID:     "pref-deny",
		UserID: "mary",
		Scope:  policy.Scope{ObsKind: sensor.ObsWiFiConnect},
		Rule:   policy.Rule{Action: policy.ActionDeny},
	}
	r := New(testModel(t), NegotiateGranularity)
	conflicts := r.Detect([]policy.BuildingPolicy{bp}, []policy.Preference{pref})
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	res := conflicts[0].Resolution
	if res.EffectiveRule.Action != policy.ActionLimit || res.EffectiveRule.MaxGranularity != policy.GranBuilding {
		t.Errorf("negotiated deny = %+v, want building-granularity release", res.EffectiveRule)
	}
	if res.NotifyUserID != "mary" {
		t.Error("negotiation must notify the user")
	}
}

func TestNegotiateKeepsSafetyOverride(t *testing.T) {
	r := New(testModel(t), NegotiateGranularity)
	p2 := policy.Policy2EmergencyLocation("dbh") // Override = true
	prefs := policy.Preference2NoLocation("mary")
	conflicts := r.Detect([]policy.BuildingPolicy{p2}, prefs)
	found := false
	for _, c := range conflicts {
		if c.PolicyID == p2.ID && c.Resolution.OverrideApplied {
			found = true
		}
	}
	if !found {
		t.Errorf("safety override not applied under negotiation: %+v", conflicts)
	}
}

func TestPreferencePairConflicts(t *testing.T) {
	r := New(testModel(t), MostRestrictive)
	allow := policy.Preference{
		ID: "p-allow", UserID: "mary",
		Scope: policy.Scope{ServiceID: "concierge"},
		Rule:  policy.Rule{Action: policy.ActionAllow},
	}
	deny := policy.Preference{
		ID: "p-deny", UserID: "mary",
		Scope: policy.Scope{ServiceID: "concierge"},
		Rule:  policy.Rule{Action: policy.ActionDeny},
	}
	conflicts := r.Detect(nil, []policy.Preference{allow, deny})
	if len(conflicts) != 1 || conflicts[0].Kind != PreferenceVsPreference {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	if conflicts[0].Resolution.EffectiveRule.Action != policy.ActionDeny {
		t.Errorf("merged rule = %+v, want deny", conflicts[0].Resolution.EffectiveRule)
	}

	// Different users never pair-conflict.
	deny.UserID = "bob"
	deny.ID = "p-deny-bob"
	if got := r.Detect(nil, []policy.Preference{allow, deny}); len(got) != 0 {
		t.Errorf("cross-user pair flagged: %+v", got)
	}

	// Identical rules on overlapping scopes are fine.
	dup := allow
	dup.ID = "p-allow-2"
	if got := r.Detect(nil, []policy.Preference{allow, dup}); len(got) != 0 {
		t.Errorf("identical rules flagged: %+v", got)
	}
}

func TestCombineRules(t *testing.T) {
	allow := policy.Rule{Action: policy.ActionAllow}
	deny := policy.Rule{Action: policy.ActionDeny}
	floor := policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranFloor}
	room := policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranRoom}
	noise1 := policy.Rule{Action: policy.ActionLimit, NoiseEpsilon: 1}
	noise01 := policy.Rule{Action: policy.ActionLimit, NoiseEpsilon: 0.1}
	agg := policy.Rule{Action: policy.ActionLimit, MinAggregationK: 5}

	tests := []struct {
		name string
		in   []policy.Rule
		want policy.Rule
	}{
		{"empty -> allow", nil, allow},
		{"allow only", []policy.Rule{allow, allow}, allow},
		{"deny dominates", []policy.Rule{allow, floor, deny}, deny},
		{"limit beats allow", []policy.Rule{allow, floor}, floor},
		{"coarsest granularity", []policy.Rule{room, floor}, floor},
		{"smallest epsilon", []policy.Rule{noise1, noise01}, policy.Rule{Action: policy.ActionLimit, NoiseEpsilon: 0.1}},
		{"largest K", []policy.Rule{agg, {Action: policy.ActionLimit, MinAggregationK: 2}}, agg},
		{
			"mixed mechanisms union",
			[]policy.Rule{floor, noise01, agg},
			policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranFloor, NoiseEpsilon: 0.1, MinAggregationK: 5},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CombineRules(tt.in...); got != tt.want {
				t.Errorf("CombineRules = %+v, want %+v", got, tt.want)
			}
		})
	}
}

// TestCombineRulesProperties: order-independence and idempotence.
func TestCombineRulesProperties(t *testing.T) {
	rules := []policy.Rule{
		{Action: policy.ActionAllow},
		{Action: policy.ActionLimit, MaxGranularity: policy.GranFloor},
		{Action: policy.ActionLimit, NoiseEpsilon: 0.5},
		{Action: policy.ActionLimit, MinAggregationK: 3},
	}
	forward := CombineRules(rules...)
	reversed := CombineRules(rules[3], rules[2], rules[1], rules[0])
	if forward != reversed {
		t.Errorf("CombineRules order-dependent: %+v vs %+v", forward, reversed)
	}
	again := CombineRules(forward, forward)
	if again != forward {
		t.Errorf("CombineRules not idempotent: %+v vs %+v", again, forward)
	}
}

func TestDetectDeterministicOrder(t *testing.T) {
	r := New(testModel(t), MostRestrictive)
	p2 := policy.Policy2EmergencyLocation("dbh")
	prefs := append(policy.Preference2NoLocation("mary"), policy.Preference2NoLocation("alice")...)
	a := r.Detect([]policy.BuildingPolicy{p2}, prefs)
	b := r.Detect([]policy.BuildingPolicy{p2}, prefs)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].PreferenceID != b[i].PreferenceID || a[i].OtherPreferenceID != b[i].OtherPreferenceID {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestKindAndStrategyStrings(t *testing.T) {
	if PolicyVsPreference.String() != "policy-vs-preference" ||
		PreferenceVsPreference.String() != "preference-vs-preference" {
		t.Error("kind names wrong")
	}
	if ConflictKind(9).String() == "" || Strategy(9).String() == "" {
		t.Error("fallback names empty")
	}
	for _, s := range []Strategy{MostRestrictive, BuildingWins, UserWins, NegotiateGranularity} {
		if s.String() == "" {
			t.Errorf("Strategy(%d) has no name", s)
		}
	}
	if New(nil, 0).Strategy() != MostRestrictive {
		t.Error("zero strategy does not default to MostRestrictive")
	}
}
