// Package inference implements the privacy attacks the paper's §II.A
// warns about: from raw building observations it derives real-time
// location, room occupancy, daily working patterns, occupant roles
// ("using simple heuristics ... it is possible to infer whether a
// given user is a member of the staff or a student"), and identity
// links between anonymous devices and named occupants via background
// knowledge (office assignments).
//
// The attacks operate on observation slices, so the same code runs
// against the raw store (demonstrating the threat) and against
// enforcement-released views (measuring the mitigation) — experiment
// E5.
package inference

import (
	"sort"
	"time"

	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// LocateAt returns the subject's inferred location at time t: the
// space of their most recent location-bearing observation at or
// before t (within staleness). This is the paper's "it is possible to
// infer the real-time location of a user" from AP logs plus AP
// placement.
func LocateAt(obs []sensor.Observation, subjectKey func(sensor.Observation) string, subject string, t time.Time, staleness time.Duration) (string, bool) {
	var best *sensor.Observation
	for i := range obs {
		o := &obs[i]
		if subjectKey(*o) != subject || o.SpaceID == "" {
			continue
		}
		if o.Kind != sensor.ObsWiFiConnect && o.Kind != sensor.ObsBLESighting {
			continue
		}
		if o.Time.After(t) {
			continue
		}
		if best == nil || o.Time.After(best.Time) {
			best = o
		}
	}
	if best == nil || t.Sub(best.Time) > staleness {
		return "", false
	}
	return best.SpaceID, true
}

// ByUserID keys observations by their attributed user.
func ByUserID(o sensor.Observation) string { return o.UserID }

// ByDeviceMAC keys observations by device identifier (works on
// pseudonymized streams too — pseudonyms are stable).
func ByDeviceMAC(o sensor.Observation) string { return o.DeviceMAC }

// OccupiedDuring reports whether any subject was observed in the
// space during [from, to) — the Preference 1 threat: "using the data
// collected based on Policy 1 it is possible to discover whether
// someone's office is occupied or not."
func OccupiedDuring(obs []sensor.Observation, spaceID string, from, to time.Time) bool {
	for _, o := range obs {
		if o.SpaceID != spaceID {
			continue
		}
		if o.Kind != sensor.ObsWiFiConnect && o.Kind != sensor.ObsBLESighting && o.Kind != sensor.ObsMotionEvent {
			continue
		}
		if !o.Time.Before(from) && o.Time.Before(to) {
			return true
		}
	}
	return false
}

// Pattern is one subject's extracted working pattern.
type Pattern struct {
	Subject string
	// FirstSeen and LastSeen are mean minutes-since-midnight of the
	// subject's first and last sighting per observed day.
	FirstSeen float64
	LastSeen  float64
	// Days is how many distinct days contributed.
	Days int
	// ClassroomFraction is the fraction of sightings inside spaces
	// classified as classrooms (supplied by the caller).
	ClassroomFraction float64
}

// ExtractPatterns mines per-subject working patterns from
// location-bearing observations. isClassroom may be nil.
func ExtractPatterns(obs []sensor.Observation, subjectKey func(sensor.Observation) string, isClassroom func(spaceID string) bool) map[string]Pattern {
	type dayAgg struct {
		first, last time.Time
	}
	perSubject := make(map[string]map[string]*dayAgg)
	classTotal := make(map[string]int)
	classHits := make(map[string]int)
	for _, o := range obs {
		if o.Kind != sensor.ObsWiFiConnect && o.Kind != sensor.ObsBLESighting {
			continue
		}
		subj := subjectKey(o)
		if subj == "" {
			continue
		}
		day := o.Time.Format("2006-01-02")
		if perSubject[subj] == nil {
			perSubject[subj] = make(map[string]*dayAgg)
		}
		agg := perSubject[subj][day]
		if agg == nil {
			agg = &dayAgg{first: o.Time, last: o.Time}
			perSubject[subj][day] = agg
		} else {
			if o.Time.Before(agg.first) {
				agg.first = o.Time
			}
			if o.Time.After(agg.last) {
				agg.last = o.Time
			}
		}
		if o.SpaceID != "" {
			classTotal[subj]++
			if isClassroom != nil && isClassroom(o.SpaceID) {
				classHits[subj]++
			}
		}
	}
	out := make(map[string]Pattern, len(perSubject))
	for subj, days := range perSubject {
		var firstSum, lastSum float64
		for _, agg := range days {
			firstSum += float64(agg.first.Hour()*60 + agg.first.Minute())
			lastSum += float64(agg.last.Hour()*60 + agg.last.Minute())
		}
		n := float64(len(days))
		p := Pattern{
			Subject:   subj,
			FirstSeen: firstSum / n,
			LastSeen:  lastSum / n,
			Days:      len(days),
		}
		if classTotal[subj] > 0 {
			p.ClassroomFraction = float64(classHits[subj]) / float64(classTotal[subj])
		}
		out[subj] = p
	}
	return out
}

// ClassifyRole applies the paper's §II.A heuristics to a pattern:
// early arrival and pre-5pm departure marks staff; late departure
// marks graduate students; classroom-dominated presence marks
// undergrads; the remainder defaults to faculty.
func ClassifyRole(p Pattern) profile.Group {
	switch {
	case p.ClassroomFraction > 0.5:
		return profile.GroupUndergrad
	case p.FirstSeen < 8*60 && p.LastSeen < 17*60+30:
		return profile.GroupStaff
	case p.LastSeen > 19*60:
		return profile.GroupGradStudent
	default:
		return profile.GroupFaculty
	}
}

// RoleAccuracy scores classified roles against ground truth, returning
// (accuracy, evaluated count). Subjects missing from truth are
// skipped.
func RoleAccuracy(patterns map[string]Pattern, truth map[string]profile.Group) (float64, int) {
	correct, n := 0, 0
	for subj, p := range patterns {
		want, ok := truth[subj]
		if !ok {
			continue
		}
		n++
		if ClassifyRole(p) == want {
			correct++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(correct) / float64(n), n
}

// MajorityBaseline returns the accuracy of always guessing the most
// common role in truth — the floor an effective mitigation should
// push the attack toward.
func MajorityBaseline(truth map[string]profile.Group) float64 {
	counts := make(map[profile.Group]int)
	for _, g := range truth {
		counts[g]++
	}
	best, total := 0, 0
	for _, c := range counts {
		total += c
		if c > best {
			best = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(best) / float64(total)
}

// LinkIdentities attributes anonymous device identifiers to named
// occupants using background knowledge: the space each subject
// frequents most is assumed to be their office, and office ownership
// is public (§II.A: "by integrating this with publicly available
// information ... it would be possible to identify individuals").
// ownerOf maps a space to its known owners. The result maps device
// key to the guessed user ID.
func LinkIdentities(obs []sensor.Observation, deviceKey func(sensor.Observation) string, ownerOf func(spaceID string) []string) map[string]string {
	// Count sightings per (device, space).
	counts := make(map[string]map[string]int)
	for _, o := range obs {
		dev := deviceKey(o)
		if dev == "" || o.SpaceID == "" {
			continue
		}
		if o.Kind != sensor.ObsWiFiConnect && o.Kind != sensor.ObsBLESighting {
			continue
		}
		if counts[dev] == nil {
			counts[dev] = make(map[string]int)
		}
		counts[dev][o.SpaceID]++
	}
	out := make(map[string]string)
	for dev, spaces := range counts {
		type sc struct {
			space string
			n     int
		}
		ranked := make([]sc, 0, len(spaces))
		for s, n := range spaces {
			ranked = append(ranked, sc{s, n})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].n != ranked[j].n {
				return ranked[i].n > ranked[j].n
			}
			return ranked[i].space < ranked[j].space
		})
		for _, cand := range ranked {
			owners := ownerOf(cand.space)
			if len(owners) == 1 {
				out[dev] = owners[0]
				break
			}
		}
	}
	return out
}

// LinkAccuracy scores identity links against the true device-to-user
// mapping.
func LinkAccuracy(links map[string]string, truth map[string]string) (float64, int) {
	correct, n := 0, 0
	for dev, want := range truth {
		guess, ok := links[dev]
		if !ok {
			continue
		}
		n++
		if guess == want {
			correct++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(correct) / float64(n), n
}
