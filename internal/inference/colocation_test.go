package inference

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/sensor"
)

func obsAt(user, room string, minute int) sensor.Observation {
	return sensor.Observation{
		SensorID: "src",
		Kind:     sensor.ObsBLESighting,
		SpaceID:  room,
		UserID:   user,
		Time:     day0.Add(time.Duration(minute) * time.Minute),
	}
}

func TestCoLocationFindsPairs(t *testing.T) {
	var obs []sensor.Observation
	// alice and bob share room r1 across three intervals.
	for _, m := range []int{0, 20, 40} {
		obs = append(obs, obsAt("alice", "r1", m), obsAt("bob", "r1", m+1))
	}
	// carol is in r1 once only.
	obs = append(obs, obsAt("carol", "r1", 0))
	// dave is always elsewhere.
	obs = append(obs, obsAt("dave", "r2", 0), obsAt("dave", "r2", 20))

	ties := CoLocation(obs, ByUserID, 15*time.Minute, 2)
	if len(ties) != 1 {
		t.Fatalf("ties = %+v, want exactly alice-bob", ties)
	}
	if ties[0].A != "alice" || ties[0].B != "bob" || ties[0].SharedIntervals != 3 {
		t.Errorf("tie = %+v", ties[0])
	}
	// With minShared 1, carol joins (one shared bucket with both).
	ties = CoLocation(obs, ByUserID, 15*time.Minute, 1)
	if len(ties) != 3 {
		t.Errorf("minShared=1 ties = %+v, want 3 pairs", ties)
	}
	// Strongest tie first.
	if ties[0].SharedIntervals < ties[len(ties)-1].SharedIntervals {
		t.Error("ties not sorted by strength")
	}
}

func TestCoLocationIgnoresUselessSignals(t *testing.T) {
	obs := []sensor.Observation{
		{Kind: sensor.ObsPowerReading, SpaceID: "r1", UserID: "a", Time: day0},
		{Kind: sensor.ObsBLESighting, SpaceID: "", UserID: "a", Time: day0},
		{Kind: sensor.ObsBLESighting, SpaceID: "r1", UserID: "", Time: day0},
	}
	if ties := CoLocation(obs, ByUserID, 0, 1); len(ties) != 0 {
		t.Errorf("ties from useless signals: %+v", ties)
	}
}

func TestTieOverlap(t *testing.T) {
	truth := []Tie{{A: "a", B: "b", SharedIntervals: 9}, {A: "c", B: "d", SharedIntervals: 5}}
	perfect := TieOverlap(truth, truth, 2)
	if perfect != 1 {
		t.Errorf("self overlap = %v", perfect)
	}
	miss := []Tie{{A: "x", B: "y", SharedIntervals: 7}, {A: "c", B: "d", SharedIntervals: 5}}
	if got := TieOverlap(miss, truth, 2); got != 0.5 {
		t.Errorf("half overlap = %v", got)
	}
	if got := TieOverlap(nil, truth, 2); got != 0 {
		t.Errorf("empty inferred = %v", got)
	}
	if got := TieOverlap(truth, nil, 2); got != 0 {
		t.Errorf("empty truth = %v", got)
	}
}

// TestCoLocationOnSimulatedDay: the attack recovers the ground-truth
// co-presence structure from raw data, and coarsening destroys the
// room-level signal (everyone is "in the building", so ties become
// meaningless noise covering the whole population).
func TestCoLocationOnSimulatedDay(t *testing.T) {
	b, _, res, obs := simulated(t, 40)

	// Ground truth: ties computed from the traces themselves.
	var truthObs []sensor.Observation
	for id, tr := range res.Traces {
		for _, stay := range tr.Stays {
			for ts := stay.Start; ts.Before(stay.End); ts = ts.Add(15 * time.Minute) {
				truthObs = append(truthObs, sensor.Observation{
					Kind: sensor.ObsBLESighting, SpaceID: stay.SpaceID, UserID: id, Time: ts,
				})
			}
		}
	}
	truth := CoLocation(truthObs, ByUserID, 15*time.Minute, 4)
	if len(truth) == 0 {
		t.Skip("no strong ground-truth ties at this seed")
	}

	raw := CoLocation(obs, ByUserID, 15*time.Minute, 4)
	if got := TieOverlap(raw, truth, 10); got < 0.5 {
		t.Errorf("raw-data tie recovery = %.2f, want >= 0.5", got)
	}

	// Coarsened release: every tie collapses to "same building".
	var coarse []sensor.Observation
	for _, o := range obs {
		c, ok := privacy.CoarsenLocation(o, policy.GranBuilding, b.Spaces)
		if ok {
			coarse = append(coarse, c)
		}
	}
	coarseTies := CoLocation(coarse, ByUserID, 15*time.Minute, 4)
	// The only room left is the building itself: ties are no longer
	// room-level evidence. Every pair present at the same time ties,
	// so precision against room-level truth collapses.
	distinctRooms := map[string]bool{}
	for _, o := range coarse {
		distinctRooms[o.SpaceID] = true
	}
	if len(distinctRooms) != 1 {
		t.Fatalf("coarsening left %d distinct spaces", len(distinctRooms))
	}
	if len(coarseTies) <= len(raw) {
		t.Logf("coarse ties %d vs raw %d (building-level ties are indiscriminate)", len(coarseTies), len(raw))
	}
}
