package inference

import (
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/sim"
)

var day0 = time.Date(2017, time.June, 7, 0, 0, 0, 0, time.UTC)

// simulated returns a small simulated day with attributed
// observations (as the BMS would store them after ingest).
func simulated(t testing.TB, users int) (*sim.Building, *profile.Directory, sim.DayResult, []sensor.Observation) {
	t.Helper()
	b, err := sim.SmallDBH().Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := sim.GeneratePopulation(b, users, sim.CampusMix(), 61)
	res := sim.SimulateDay(b, dir, sim.DayConfig{Date: day0, Seed: 67})
	// Attribute as ingest would: MAC -> user, space from sensor.
	var attributed []sensor.Observation
	for _, o := range res.Observations {
		if s, ok := b.Sensors.Get(o.SensorID); ok && o.SpaceID == "" {
			o.SpaceID = s.SpaceID
		}
		if u, ok := dir.LookupMAC(o.DeviceMAC); ok {
			o.UserID = u.ID
		}
		attributed = append(attributed, o)
	}
	return b, dir, res, attributed
}

func TestLocateAt(t *testing.T) {
	b, _, res, obs := simulated(t, 30)
	// Location inference from network logs is sensor-granularity: the
	// inferred space is either the stay's room (beacon sighting) or
	// the space of the AP the device associated with. Check every
	// user so the assertion is deterministic.
	checked := 0
	for userID, tr := range res.Traces {
		if len(tr.Stays) == 0 {
			continue
		}
		stay := tr.Stays[0]
		mid := stay.Start.Add(stay.End.Sub(stay.Start) / 2)
		got, ok := LocateAt(obs, ByUserID, userID, mid, 2*time.Hour)
		if !ok {
			t.Fatalf("LocateAt(%s) found nothing", userID)
		}
		expected := map[string]bool{stay.SpaceID: true}
		if apID, found := b.APFor(stay.SpaceID); found {
			if ap, found := b.Sensors.Get(apID); found {
				expected[ap.SpaceID] = true
			}
		}
		if !expected[got] {
			t.Errorf("LocateAt(%s) = %s, want one of %v", userID, got, expected)
		}
		// Before arrival: nothing.
		if _, ok := LocateAt(obs, ByUserID, userID, tr.Arrival().Add(-time.Hour), 30*time.Minute); ok {
			t.Errorf("located %s before arrival", userID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no traces to check")
	}
	if _, ok := LocateAt(obs, ByUserID, "nobody", day0.Add(12*time.Hour), time.Hour); ok {
		t.Error("located unknown subject")
	}
}

func TestOccupiedDuring(t *testing.T) {
	b, _, res, obs := simulated(t, 30)
	// Occupancy detection needs an in-room signal source; assert only
	// for stays in rooms that have their own beacon or AP, checking
	// every such stay deterministically.
	hasInRoomSensor := func(space string) bool {
		if len(b.BeaconsIn(space)) > 0 {
			return true
		}
		for _, s := range b.Sensors.InSpace(space) {
			if s.Type.String() == "WiFi Access Point" {
				return true
			}
		}
		return false
	}
	checked := 0
	for _, tr := range res.Traces {
		for _, stay := range tr.Stays {
			if !hasInRoomSensor(stay.SpaceID) {
				continue
			}
			if !OccupiedDuring(obs, stay.SpaceID, stay.Start, stay.End) {
				t.Errorf("stay in %s (%v-%v) not detected", stay.SpaceID, stay.Start, stay.End)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no covered stays to check")
	}
	// 3am: the whole building is empty.
	for _, rooms := range b.RoomIDs {
		for _, room := range rooms {
			if OccupiedDuring(obs, room, day0.Add(3*time.Hour), day0.Add(4*time.Hour)) {
				t.Errorf("space %s occupied at 3am", room)
			}
		}
	}
}

func TestRoleInferenceOnRawData(t *testing.T) {
	b, dir, res, obs := simulated(t, 150)
	classrooms := map[string]bool{}
	for _, c := range b.Classrooms {
		classrooms[c] = true
	}
	patterns := ExtractPatterns(obs, ByUserID, func(s string) bool { return classrooms[s] })
	truth := make(map[string]profile.Group)
	for id, tr := range res.Traces {
		truth[id] = tr.Group
	}
	_ = dir
	acc, n := RoleAccuracy(patterns, truth)
	if n < 100 {
		t.Fatalf("evaluated only %d subjects", n)
	}
	base := MajorityBaseline(truth)
	if acc <= base+0.1 {
		t.Errorf("attack accuracy %.2f not meaningfully above baseline %.2f — the §II.A threat should be real on raw data", acc, base)
	}
}

func TestRoleInferenceCollapsesOnCoarsenedData(t *testing.T) {
	b, _, res, obs := simulated(t, 150)
	classrooms := map[string]bool{}
	for _, c := range b.Classrooms {
		classrooms[c] = true
	}
	truth := make(map[string]profile.Group)
	for id, tr := range res.Traces {
		truth[id] = tr.Group
	}

	// Enforcement releases building-granularity, pseudonymized data.
	pseud := privacy.NewPseudonymizer([]byte("k"))
	var released []sensor.Observation
	for _, o := range obs {
		coarse, ok := privacy.CoarsenLocation(o, policy.GranBuilding, b.Spaces)
		if !ok {
			continue
		}
		released = append(released, pseud.PseudonymizeObservation(coarse))
	}
	patterns := ExtractPatterns(released, ByUserID, func(s string) bool { return classrooms[s] })
	// Attribution is destroyed: no named subjects remain.
	if len(patterns) != 0 {
		t.Errorf("pseudonymized release still has %d named patterns", len(patterns))
	}
	// Even keying by pseudonym, the classroom signal is gone
	// (everything coarsens to the building).
	byDev := ExtractPatterns(released, ByDeviceMAC, func(s string) bool { return classrooms[s] })
	for _, p := range byDev {
		if p.ClassroomFraction != 0 {
			t.Errorf("classroom fraction survived coarsening: %+v", p)
		}
	}
}

func TestLinkIdentities(t *testing.T) {
	_, dir, _, obs := simulated(t, 12)
	// Strip attribution, keep MACs: the anonymized-but-linkable case.
	var anon []sensor.Observation
	truth := make(map[string]string)
	for _, o := range obs {
		if o.UserID != "" && o.DeviceMAC != "" {
			truth[o.DeviceMAC] = o.UserID
		}
		o.UserID = ""
		anon = append(anon, o)
	}
	links := LinkIdentities(anon, ByDeviceMAC, dir.OfficeOwner)
	acc, n := LinkAccuracy(links, truth)
	if n == 0 {
		t.Fatal("no links evaluated")
	}
	// Office holders (faculty/staff/grads ~50% of population) should
	// link at high precision; undergrads have no office and are
	// unlinkable, and a user whose own office lacks an in-room sensor
	// can be mis-linked through a colleague's office, so the attack is
	// strong but not perfect.
	if acc < 0.7 {
		t.Errorf("link accuracy = %.2f over %d links, want >= 0.7", acc, n)
	}
}

func TestLinkIdentitiesDefeatedByCoarsening(t *testing.T) {
	b, dir, _, obs := simulated(t, 12)
	var coarse []sensor.Observation
	for _, o := range obs {
		c, ok := privacy.CoarsenLocation(o, policy.GranBuilding, b.Spaces)
		if !ok {
			continue
		}
		c.UserID = ""
		coarse = append(coarse, c)
	}
	links := LinkIdentities(coarse, ByDeviceMAC, dir.OfficeOwner)
	if len(links) != 0 {
		t.Errorf("coarsened data still produced %d identity links", len(links))
	}
}

func TestMajorityBaseline(t *testing.T) {
	truth := map[string]profile.Group{
		"a": profile.GroupStaff, "b": profile.GroupStaff, "c": profile.GroupFaculty, "d": profile.GroupStaff,
	}
	if got := MajorityBaseline(truth); got != 0.75 {
		t.Errorf("baseline = %v, want 0.75", got)
	}
	if got := MajorityBaseline(nil); got != 0 {
		t.Errorf("empty baseline = %v", got)
	}
}

func TestClassifyRoleHeuristics(t *testing.T) {
	tests := []struct {
		p    Pattern
		want profile.Group
	}{
		{Pattern{FirstSeen: 7 * 60, LastSeen: 16 * 60}, profile.GroupStaff},
		{Pattern{FirstSeen: 11 * 60, LastSeen: 21 * 60}, profile.GroupGradStudent},
		{Pattern{FirstSeen: 9 * 60, LastSeen: 18 * 60}, profile.GroupFaculty},
		{Pattern{FirstSeen: 9 * 60, LastSeen: 16 * 60, ClassroomFraction: 0.8}, profile.GroupUndergrad},
	}
	for _, tt := range tests {
		if got := ClassifyRole(tt.p); got != tt.want {
			t.Errorf("ClassifyRole(%+v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRoleAccuracyEmpty(t *testing.T) {
	if acc, n := RoleAccuracy(nil, nil); acc != 0 || n != 0 {
		t.Error("empty inputs should yield zero")
	}
	if acc, n := LinkAccuracy(nil, nil); acc != 0 || n != 0 {
		t.Error("empty link inputs should yield zero")
	}
}
