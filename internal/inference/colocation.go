package inference

import (
	"sort"
	"time"

	"github.com/tippers/tippers/internal/sensor"
)

// This file implements the social-tie attack in the paper's §II.A
// threat list: raw building data reveals "when and with whom they
// spend time" — the Eagle & Pentland "reality mining" result the
// paper cites. Two subjects repeatedly observed in the same room
// during the same interval are inferred to spend time together.

// Tie is one inferred social connection.
type Tie struct {
	A, B string
	// SharedIntervals is the number of (room, interval) buckets both
	// subjects appeared in.
	SharedIntervals int
}

// CoLocation mines ties from location-bearing observations: subjects
// are bucketed by (room, interval); every pair sharing at least
// minShared buckets becomes a tie. Ties are sorted by strength
// descending, then lexicographically. interval zero selects 15
// minutes.
func CoLocation(obs []sensor.Observation, subjectKey func(sensor.Observation) string, interval time.Duration, minShared int) []Tie {
	if interval <= 0 {
		interval = 15 * time.Minute
	}
	if minShared < 1 {
		minShared = 1
	}
	// (room, bucket) -> distinct subjects.
	type cell struct {
		room   string
		bucket int64
	}
	cells := make(map[cell]map[string]bool)
	for _, o := range obs {
		if o.SpaceID == "" {
			continue
		}
		if o.Kind != sensor.ObsWiFiConnect && o.Kind != sensor.ObsBLESighting {
			continue
		}
		subj := subjectKey(o)
		if subj == "" {
			continue
		}
		c := cell{room: o.SpaceID, bucket: o.Time.UnixNano() / int64(interval)}
		if cells[c] == nil {
			cells[c] = make(map[string]bool)
		}
		cells[c][subj] = true
	}

	pairCounts := make(map[[2]string]int)
	for _, subjects := range cells {
		if len(subjects) < 2 {
			continue
		}
		list := make([]string, 0, len(subjects))
		for s := range subjects {
			list = append(list, s)
		}
		sort.Strings(list)
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				pairCounts[[2]string{list[i], list[j]}]++
			}
		}
	}

	var out []Tie
	for pair, n := range pairCounts {
		if n >= minShared {
			out = append(out, Tie{A: pair[0], B: pair[1], SharedIntervals: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SharedIntervals != out[j].SharedIntervals {
			return out[i].SharedIntervals > out[j].SharedIntervals
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TieOverlap measures how well inferred ties match a reference set:
// the fraction of the strongest min(k, len(truth)) reference ties
// recovered among the attacker's top k. Both slices must be sorted by
// strength (as CoLocation returns).
func TieOverlap(inferred, truth []Tie, k int) float64 {
	if k <= 0 || len(truth) == 0 {
		return 0
	}
	if k > len(truth) {
		k = len(truth)
	}
	want := make(map[[2]string]bool, k)
	for i := 0; i < k && i < len(truth); i++ {
		want[[2]string{truth[i].A, truth[i].B}] = true
	}
	hit := 0
	for i := 0; i < k && i < len(inferred); i++ {
		if want[[2]string{inferred[i].A, inferred[i].B}] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}
