package enforce

import (
	"fmt"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/telemetry"
)

// Cached wraps another engine with a decision memo — the third arm of
// the §V.C optimization study. Real request streams are heavily
// repetitive (the same service polls the same subjects), so even the
// indexed engine re-evaluates identical (subject, service, purpose,
// kind, space) tuples; the cache collapses those to a map hit.
//
// Correctness constraints, both load-bearing:
//
//   - Time-windowed rules make decisions time-dependent, so the cache
//     key quantizes the request time to the minute (windows have
//     minute resolution). Two requests in the same minute are
//     guaranteed identical decisions; across minutes they re-evaluate.
//   - Decisions that generated notifications are never cached:
//     replaying them from the cache would either duplicate user
//     notifications or silently swallow them. Override paths
//     therefore always hit the inner engine.
//
// Any rule mutation invalidates the whole cache (epoch bump) — rule
// changes are rare next to requests, so coarse invalidation wins over
// precise tracking.
type Cached struct {
	inner Engine

	mu    sync.RWMutex
	memo  map[cacheKey]Decision
	epoch uint64
	hits  *telemetry.Counter
	miss  *telemetry.Counter

	// maxEntries bounds memory; at the cap the memo is reset (simple
	// and effective for cyclic workloads).
	maxEntries int
}

type cacheKey struct {
	epoch       uint64
	subject     string
	service     string
	purpose     policy.Purpose
	kind        string
	space       string
	granularity policy.Granularity
	minute      int64
	groupsKey   string
}

var _ Engine = (*Cached)(nil)

// NewCached wraps inner with a decision memo of at most maxEntries
// (0 selects 65536).
func NewCached(inner Engine, maxEntries int) *Cached {
	if maxEntries <= 0 {
		maxEntries = 65536
	}
	return &Cached{
		inner:      inner,
		memo:       make(map[cacheKey]Decision),
		maxEntries: maxEntries,
		hits:       telemetry.NewCounter(),
		miss:       telemetry.NewCounter(),
	}
}

// AddPolicy implements Engine, invalidating the memo.
func (c *Cached) AddPolicy(p policy.BuildingPolicy) error {
	if err := c.inner.AddPolicy(p); err != nil {
		return err
	}
	c.invalidate()
	return nil
}

// AddPreference implements Engine, invalidating the memo.
func (c *Cached) AddPreference(p policy.Preference) error {
	if err := c.inner.AddPreference(p); err != nil {
		return err
	}
	c.invalidate()
	return nil
}

// RemovePreference implements Engine, invalidating the memo.
func (c *Cached) RemovePreference(id string) bool {
	ok := c.inner.RemovePreference(id)
	if ok {
		c.invalidate()
	}
	return ok
}

// Counts implements Engine.
func (c *Cached) Counts() (int, int) { return c.inner.Counts() }

func (c *Cached) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	if len(c.memo) > 0 {
		c.memo = make(map[cacheKey]Decision)
	}
}

// Stats returns (hits, misses) since construction.
func (c *Cached) Stats() (hits, misses uint64) {
	return c.hits.Value(), c.miss.Value()
}

// RegisterMetrics exposes the memo's hit/miss counters, current size,
// and hit ratio on a telemetry registry.
func (c *Cached) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("tippers_enforce_cache_hits_total",
		"Decision-cache hits.", func() float64 { return float64(c.hits.Value()) })
	r.CounterFunc("tippers_enforce_cache_misses_total",
		"Decision-cache misses (inner engine consulted).", func() float64 { return float64(c.miss.Value()) })
	r.GaugeFunc("tippers_enforce_cache_entries",
		"Memoized decisions currently held.", func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(len(c.memo))
		})
	r.GaugeFunc("tippers_enforce_cache_hit_ratio",
		"Fraction of decisions served from the memo.", func() float64 {
			h, m := c.hits.Value(), c.miss.Value()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	if reg, ok := c.inner.(metricsRegisterer); ok {
		reg.RegisterMetrics(r)
	}
}

// Decide implements Engine with memoization.
func (c *Cached) Decide(req Request, subjectGroups []profile.Group) Decision {
	t := req.Time
	if t.IsZero() {
		// An unset time means "now"; quantize the actual wall clock so
		// entries age out of validity with it.
		t = time.Now()
	}
	var groupsKey string
	for _, g := range subjectGroups {
		groupsKey += string(g) + "|"
	}
	c.mu.RLock()
	key := cacheKey{
		epoch:       c.epoch,
		subject:     req.SubjectID,
		service:     req.ServiceID,
		purpose:     req.Purpose,
		kind:        string(req.Kind),
		space:       req.SpaceID,
		granularity: req.Granularity,
		minute:      t.Unix() / 60,
		groupsKey:   groupsKey,
	}
	d, ok := c.memo[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Inc()
		d.FromCache = true
		return d
	}

	d = c.inner.Decide(req, subjectGroups)

	c.mu.Lock()
	c.miss.Inc()
	// Only notification-free decisions are safe to replay.
	if len(d.Notifications) == 0 && key.epoch == c.epoch {
		if len(c.memo) >= c.maxEntries {
			c.memo = make(map[cacheKey]Decision)
		}
		c.memo[key] = d
	}
	c.mu.Unlock()
	return d
}

// String identifies the engine in experiment output.
func (c *Cached) String() string {
	return fmt.Sprintf("cached(%T)", c.inner)
}
