package enforce

// This file is the enforcement side of the parallel query path:
// post-filter decisions for a query result evaluated concurrently
// instead of one at a time. The paper's §V.C cost concern is worst on
// aggregate requests — one occupancy query over a busy floor decides
// every candidate subject — so the aggregate path
// (core.RequestOccupancy) batches those decisions across a bounded
// worker pool. Engines already guarantee concurrent Decide safety
// (see Engine), and the Cached wrapper's memo is shared by the pool,
// so fanning out reuses the decision cache rather than defeating it.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/profile"
)

// BatchItem pairs one request with its subject's profile groups for
// DecideBatch.
type BatchItem struct {
	Req    Request
	Groups []profile.Group
}

// BatchOptions tunes DecideBatch.
type BatchOptions struct {
	// Parallelism bounds concurrent Decide calls; <= 0 selects
	// GOMAXPROCS.
	Parallelism int
	// Observe, when set, receives every decision and its latency. It
	// is called from worker goroutines and must be safe for
	// concurrent use (telemetry histograms and counters are).
	Observe func(Decision, time.Duration)
}

// DecideBatch evaluates the items on a bounded worker pool and
// returns their decisions in item order. Decisions are exactly those
// the equivalent Decide loop would produce — the pool only reorders
// the evaluation, never the results.
func DecideBatch(e Engine, items []BatchItem, opts BatchOptions) []Decision {
	out := make([]Decision, len(items))
	if len(items) == 0 {
		return out
	}
	decideOne := func(i int) {
		t0 := time.Now()
		d := e.Decide(items[i].Req, items[i].Groups)
		if opts.Observe != nil {
			opts.Observe(d, time.Since(t0))
		}
		out[i] = d
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			decideOne(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				decideOne(i)
			}
		}()
	}
	wg.Wait()
	return out
}
