package enforce

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
)

// The decision memo built into Compiled carries the correctness
// obligations the old Cached wrapper had: minute quantization,
// epoch invalidation on every mutation, and the never-memoize rule
// for notification-bearing decisions. These tests hold it to them.

func newMemoEngine(t testing.TB) *Compiled {
	t.Helper()
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	return NewCompiled(cfg)
}

func TestMemoHitsOnRepeats(t *testing.T) {
	c := newMemoEngine(t)
	req := baseRequest()
	first := c.Decide(req, nil)
	second := c.Decide(req, nil)
	if !reflect.DeepEqual(normalizeDecision(first), normalizeDecision(second)) {
		t.Error("memoized decision differs")
	}
	if !second.FromCache {
		t.Error("second identical decision not served from memo")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1/1", hits, misses)
	}
}

func TestMemoMinuteQuantization(t *testing.T) {
	c := newMemoEngine(t)
	// A business-hours-scoped preference makes decisions time-dependent.
	if err := c.AddPreference(policy.Preference{
		ID: "biz-only", UserID: "mary",
		Scope: policy.Scope{ObsKind: sensor.ObsWiFiConnect, Window: policy.BusinessHours},
		Rule:  policy.Rule{Action: policy.ActionDeny},
	}); err != nil {
		t.Fatal(err)
	}
	req := baseRequest() // Wednesday 2pm: inside business hours
	if d := c.Decide(req, nil); d.Allowed {
		t.Fatal("business-hours deny missed")
	}
	// Same minute: memo hit, same outcome.
	if d := c.Decide(req, nil); d.Allowed {
		t.Fatal("memoized decision flipped")
	}
	// Evening: different minute bucket, re-evaluated, now allowed.
	req.Time = time.Date(2017, time.June, 7, 20, 0, 0, 0, time.UTC)
	if d := c.Decide(req, nil); !d.Allowed {
		t.Fatal("evening request used stale business-hours decision")
	}
}

func TestMemoInvalidationOnRuleChange(t *testing.T) {
	c := newMemoEngine(t)
	req := baseRequest()
	if d := c.Decide(req, nil); !d.Allowed {
		t.Fatal("baseline should allow")
	}
	pref := policy.CoarseLocationPreference("mary", "concierge")
	if err := c.AddPreference(pref); err != nil {
		t.Fatal(err)
	}
	if d := c.Decide(req, nil); d.Granularity != policy.GranBuilding {
		t.Fatalf("stale memo after AddPreference: %+v", d)
	}
	if !c.RemovePreference(pref.ID) {
		t.Fatal("remove failed")
	}
	if d := c.Decide(req, nil); d.Granularity != policy.GranExact {
		t.Fatalf("stale memo after RemovePreference: %+v", d)
	}
	if c.RemovePreference("ghost") {
		t.Error("ghost removal succeeded")
	}
}

func TestMemoExternalInvalidate(t *testing.T) {
	c := newMemoEngine(t)
	req := baseRequest()
	c.Decide(req, nil)
	c.Invalidate() // the OnInvalidate fan-out path
	if d := c.Decide(req, nil); d.FromCache {
		t.Fatal("decision served from memo across Invalidate")
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Errorf("memo hit across Invalidate: %d hits", hits)
	}
}

func TestMemoNeverCachesNotifications(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	svcReg := cfg.Services
	svcReg.MustRegister(service.Service{
		ID: "bms-emergency", Name: "Emergency", Developer: service.DeveloperBuilding,
		Declares: []service.DataRequest{{
			ObsKind: sensor.ObsWiFiConnect, Purpose: policy.PurposeEmergencyResponse,
			Granularity: policy.GranExact,
		}},
	})
	c := NewCompiled(cfg)
	if err := c.AddPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := c.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	req := baseRequest()
	req.ServiceID = "bms-emergency"
	req.Purpose = policy.PurposeEmergencyResponse
	for i := 0; i < 3; i++ {
		d := c.Decide(req, nil)
		if !d.Allowed || len(d.Notifications) == 0 {
			t.Fatalf("call %d: override notification lost: %+v", i, d)
		}
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Errorf("override decisions served from memo: %d hits", hits)
	}
}

// TestMemoEquivalenceProperty: the memoized engine must agree with the
// memo-free engine on randomized workloads (notification decisions are
// exempt from memoization by design, so they agree trivially too). A
// small cap exercises whole-memo resets mid-run.
func TestMemoEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	reference := NewIndexed(cfg)
	memoized := NewCompiledMemo(cfg, 128)

	users := []string{"u0", "u1", "u2"}
	kinds := []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting, ""}
	for i := 0; i < 100; i++ {
		p := policy.Preference{
			ID:     fmt.Sprintf("p-%d", i),
			UserID: users[r.Intn(len(users))],
			Scope:  policy.Scope{ObsKind: kinds[r.Intn(len(kinds))]},
			Rule:   policy.Rule{Action: policy.Action(1 + r.Intn(2))},
		}
		if r.Intn(3) == 0 {
			p.Scope.Window = policy.AfterHours
		}
		if err := reference.AddPreference(p); err != nil {
			t.Fatal(err)
		}
		if err := memoized.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 3000; trial++ {
		req := Request{
			ServiceID:   "concierge",
			Purpose:     policy.PurposeProvidingService,
			Kind:        kinds[r.Intn(2)],
			SubjectID:   users[r.Intn(len(users))],
			SpaceID:     "dbh",
			Granularity: policy.GranExact,
			// Coarse time grid so repeats occur and the memo is hot.
			Time: time.Date(2017, time.June, 7, r.Intn(24), 0, 0, 0, time.UTC),
		}
		a := normalizeDecision(reference.Decide(req, nil))
		b := normalizeDecision(memoized.Decide(req, nil))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: memoized disagrees\nreq: %+v\nref:  %+v\nmemo: %+v", trial, req, a, b)
		}
	}
	hits, misses := memoized.Stats()
	if hits == 0 {
		t.Errorf("memo never hit (%d misses)", misses)
	}
}

func TestMemoGroupsInKey(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	c := NewCompiled(cfg)
	bp := policy.Policy2EmergencyLocation("dbh")
	bp.Scope.SubjectGroups = []profile.Group{profile.GroupStudent}
	if err := c.AddPolicy(bp); err != nil {
		t.Fatal(err)
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := c.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	req := baseRequest()
	req.ServiceID = ""
	req.Purpose = policy.PurposeEmergencyResponse
	// Student: override applies. Faculty: deny stands. The memo must
	// not conflate them.
	if d := c.Decide(req, []profile.Group{profile.GroupStudent}); !d.Allowed {
		t.Fatalf("student decision = %+v", d)
	}
	if d := c.Decide(req, []profile.Group{profile.GroupFaculty}); d.Allowed {
		t.Fatalf("faculty decision served from student memo entry: %+v", d)
	}
}
