package enforce

import (
	"fmt"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/sensor"
)

// ApplyDecision runs the data path for an allowed decision:
// granularity clamping and noise on each observation. It returns nil
// (not an error) for a denied decision — callers use Decision.Allowed
// to distinguish "no data" from "empty data".
//
// Aggregation floors (MinAggregationK) are inherently cross-subject
// and are applied by the request manager over the union of released
// observations, not here.
func ApplyDecision(d Decision, obs []sensor.Observation, tr *privacy.Transformer) ([]sensor.Observation, error) {
	if !d.Allowed {
		return nil, nil
	}
	if tr == nil {
		return nil, fmt.Errorf("enforce: nil transformer")
	}
	out := make([]sensor.Observation, 0, len(obs))
	for _, o := range obs {
		g := d.Granularity
		if !g.Valid() {
			g = policy.GranExact
		}
		coarse, ok := privacy.CoarsenLocation(o, g, tr.Spaces)
		if !ok {
			continue
		}
		if d.Effective.NoiseEpsilon > 0 {
			coarse = tr.Noiser.NoiseObservation(coarse, d.Effective.NoiseEpsilon)
		}
		out = append(out, coarse)
	}
	return out, nil
}
