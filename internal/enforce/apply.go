package enforce

import (
	"fmt"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/sensor"
)

// ApplyDecision runs the data path for an allowed decision:
// granularity clamping and noise on each observation. It returns nil
// (not an error) for a denied decision — callers use Decision.Allowed
// to distinguish "no data" from "empty data".
//
// Aggregation floors (MinAggregationK) are inherently cross-subject
// and are applied by the request manager over the union of released
// observations, not here.
func ApplyDecision(d Decision, obs []sensor.Observation, tr *privacy.Transformer) ([]sensor.Observation, error) {
	if !d.Allowed {
		return nil, nil
	}
	if tr == nil {
		return nil, fmt.Errorf("enforce: nil transformer")
	}
	out := make([]sensor.Observation, 0, len(obs))
	for _, o := range obs {
		coarse, ok, err := ApplyDecisionOne(d, o, tr)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		out = append(out, coarse)
	}
	return out, nil
}

// ApplyDecisionOne is the single-observation data path: granularity
// clamp, then noise. ok=false means the observation is suppressed —
// either the decision denies the flow or coarsening erased the
// location entirely. Row-at-a-time callers (the query executor's
// enforced scan) use this so a row is transformed the moment it is
// decided, without batching per subject.
func ApplyDecisionOne(d Decision, o sensor.Observation, tr *privacy.Transformer) (sensor.Observation, bool, error) {
	if !d.Allowed {
		return sensor.Observation{}, false, nil
	}
	if tr == nil {
		return sensor.Observation{}, false, fmt.Errorf("enforce: nil transformer")
	}
	g := d.Granularity
	if !g.Valid() {
		g = policy.GranExact
	}
	coarse, ok := privacy.CoarsenLocation(o, g, tr.Spaces)
	if !ok {
		return sensor.Observation{}, false, nil
	}
	if d.Effective.NoiseEpsilon > 0 {
		coarse = tr.Noiser.NoiseObservation(coarse, d.Effective.NoiseEpsilon)
	}
	return coarse, true, nil
}
