package compiled

import "math/bits"

// Set is a sparse bitset over a dense uint32 ID space, stored as
// 64-bit blocks sorted by block key. Candidate selection intersects
// these per request: posting buckets hold one Set each, and a block-
// wise AND of a subject's (tiny) Set against the kind/service buckets
// yields the candidate rule IDs without ever touching the full rule
// population — the core of the engine's flat-cost property.
type Set struct {
	blocks []blockEntry
}

type blockEntry struct {
	key  uint32 // id >> 6
	bits uint64
}

// find binary-searches for key, returning its position (or the
// insertion point) and whether it is present.
func (s *Set) find(key uint32) (int, bool) {
	lo, hi := 0, len(s.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.blocks[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.blocks) && s.blocks[lo].key == key
}

// Add inserts id.
func (s *Set) Add(id uint32) {
	key, bit := id>>6, uint64(1)<<(id&63)
	i, ok := s.find(key)
	if ok {
		s.blocks[i].bits |= bit
		return
	}
	s.blocks = append(s.blocks, blockEntry{})
	copy(s.blocks[i+1:], s.blocks[i:])
	s.blocks[i] = blockEntry{key: key, bits: bit}
}

// Remove deletes id, dropping the block when it empties.
func (s *Set) Remove(id uint32) {
	key, bit := id>>6, uint64(1)<<(id&63)
	i, ok := s.find(key)
	if !ok {
		return
	}
	s.blocks[i].bits &^= bit
	if s.blocks[i].bits == 0 {
		s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
	}
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id uint32) bool {
	if s == nil {
		return false
	}
	i, ok := s.find(id >> 6)
	return ok && s.blocks[i].bits&(uint64(1)<<(id&63)) != 0
}

// Word returns the 64-bit block for the given key, or 0 when absent.
// A nil receiver is an empty set.
func (s *Set) Word(key uint32) uint64 {
	if s == nil {
		return 0
	}
	if i, ok := s.find(key); ok {
		return s.blocks[i].bits
	}
	return 0
}

// Len returns the number of IDs in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, b := range s.blocks {
		n += bits.OnesCount64(b.bits)
	}
	return n
}

// Empty reports whether the set holds no IDs.
func (s *Set) Empty() bool { return s == nil || len(s.blocks) == 0 }

// appendIDs appends the IDs encoded by (key, word) to dst in
// ascending order.
func appendIDs(dst []uint32, key uint32, word uint64) []uint32 {
	for word != 0 {
		dst = append(dst, key<<6|uint32(bits.TrailingZeros64(word)))
		word &= word - 1
	}
	return dst
}

// mergedKeys walks the union of the two sets' block keys in ascending
// order, invoking fn once per key with each set's word (0 when that
// set lacks the block).
func mergedKeys(a, b *Set, fn func(key uint32, aw, bw uint64)) {
	var ab, bb []blockEntry
	if a != nil {
		ab = a.blocks
	}
	if b != nil {
		bb = b.blocks
	}
	i, j := 0, 0
	for i < len(ab) || j < len(bb) {
		switch {
		case j >= len(bb) || (i < len(ab) && ab[i].key < bb[j].key):
			fn(ab[i].key, ab[i].bits, 0)
			i++
		case i >= len(ab) || bb[j].key < ab[i].key:
			fn(bb[j].key, 0, bb[j].bits)
			j++
		default:
			fn(ab[i].key, ab[i].bits, bb[j].bits)
			i++
			j++
		}
	}
}
