package compiled

import (
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// A program is a policy/preference scope flattened into a conjunction
// of checks, compiled once at registration time and evaluated per
// request with no document walking — the same shape datadog-agent
// gives SECL rules before any event is seen. The scalar checks
// (sensor type, kind, service, window, space) live inline in the
// struct, guarded by a flags bitmask, so evaluating a typical program
// reads only the entry it is embedded in — no instruction-slice
// pointer chase, which at a million rules is a guaranteed cache miss
// per decision. The rare list-valued checks (purpose / subject /
// group sets) spill to the lists slice. A zero scope compiles to zero
// flags and matches every context.
//
// Each check mirrors exactly one clause of
// policy.Scope.MatchesRequest; the differential property test and
// FuzzCompilePolicy hold the compiled form to that contract.
type program struct {
	flags      uint8
	sensorType sensor.Type
	obsKind    sensor.ObservationKind
	serviceID  string
	window     policy.DailyWindow
	// spaceSet is the scope space's precomputed bidirectional-
	// containment set (self, ancestors, and whole subtree). An empty
	// ctx.SpaceID is a whole-building request and matches every
	// spatial scope.
	spaceSet map[string]struct{}
	lists    []listCheck
}

const (
	fSensorType uint8 = 1 << iota
	fObsKind
	fService
	fWindow
	fSpace
)

type op uint8

const (
	// opPurposeIn: ctx.Purpose must be one of purposes.
	opPurposeIn op = iota
	// opSubjectIn: ctx.SubjectID must be one of strs.
	opSubjectIn
	// opGroupsIntersect: ctx.SubjectGroups must intersect groups.
	opGroupsIntersect
)

type listCheck struct {
	op       op
	purposes []policy.Purpose
	strs     []string
	groups   []profile.Group
}

// compileScope flattens a scope into a program.
func compileScope(s policy.Scope, overlaps *overlapSets) program {
	var p program
	if s.SensorType != 0 {
		p.flags |= fSensorType
		p.sensorType = s.SensorType
	}
	if s.ObsKind != "" {
		p.flags |= fObsKind
		p.obsKind = s.ObsKind
	}
	if s.ServiceID != "" {
		p.flags |= fService
		p.serviceID = s.ServiceID
	}
	if len(s.Purposes) > 0 {
		p.lists = append(p.lists, listCheck{op: opPurposeIn, purposes: s.Purposes})
	}
	if len(s.SubjectIDs) > 0 {
		p.lists = append(p.lists, listCheck{op: opSubjectIn, strs: s.SubjectIDs})
	}
	if len(s.SubjectGroups) > 0 {
		p.lists = append(p.lists, listCheck{op: opGroupsIntersect, groups: s.SubjectGroups})
	}
	if !s.Window.IsZero() {
		p.flags |= fWindow
		p.window = s.Window
	}
	if s.SpaceID != "" {
		p.flags |= fSpace
		p.spaceSet = overlaps.get(s.SpaceID)
	}
	return p
}

// matches evaluates the program against one request context. It must
// return exactly what Scope.MatchesRequest returns for the scope the
// program was compiled from. Cheap equality tests run first so
// evaluation fails fast; order does not affect the result (all checks
// are conjunctive).
func (p *program) matches(ctx *policy.Context) bool {
	if p.flags&fSensorType != 0 && ctx.SensorType != p.sensorType {
		return false
	}
	if p.flags&fObsKind != 0 && ctx.ObsKind != p.obsKind {
		return false
	}
	if p.flags&fService != 0 && ctx.ServiceID != p.serviceID {
		return false
	}
	for i := range p.lists {
		in := &p.lists[i]
		found := false
		switch in.op {
		case opPurposeIn:
			for _, pp := range in.purposes {
				if pp == ctx.Purpose {
					found = true
					break
				}
			}
		case opSubjectIn:
			for _, s := range in.strs {
				if s == ctx.SubjectID {
					found = true
					break
				}
			}
		case opGroupsIntersect:
			for _, g := range in.groups {
				for _, h := range ctx.SubjectGroups {
					if g == h {
						found = true
						break
					}
				}
			}
		}
		if !found {
			return false
		}
	}
	if p.flags&fWindow != 0 && (ctx.Time.IsZero() || !p.window.Contains(ctx.Time)) {
		return false
	}
	if p.flags&fSpace != 0 && ctx.SpaceID != "" {
		if _, ok := p.spaceSet[ctx.SpaceID]; !ok {
			return false
		}
	}
	return true
}

// overlapSets memoizes, per scope space ID, the set of space IDs that
// satisfy MatchesRequest's bidirectional-containment test against it:
// the space itself, its ancestors, and its whole subtree, resolved
// once at compile time. The spatial model is fixed for the life of an
// engine (core builds it before engine construction), so snapshotting
// containment when a rule is compiled is sound; scopes naming spaces
// the model does not know match only their own ID, exactly as
// Contained's unknown-space error makes MatchesRequest behave.
type overlapSets struct {
	spaces *spatial.Model
	sets   map[string]map[string]struct{}
}

func newOverlapSets(spaces *spatial.Model) *overlapSets {
	return &overlapSets{spaces: spaces, sets: make(map[string]map[string]struct{})}
}

func (o *overlapSets) get(spaceID string) map[string]struct{} {
	if s, ok := o.sets[spaceID]; ok {
		return s
	}
	set := map[string]struct{}{spaceID: {}}
	if o.spaces != nil {
		if ids, err := o.spaces.Subtree(spaceID); err == nil {
			for _, id := range ids {
				set[id] = struct{}{}
			}
		}
		if sp, ok := o.spaces.Lookup(spaceID); ok {
			for _, a := range sp.Ancestors() {
				set[a.ID] = struct{}{}
			}
		}
	}
	o.sets[spaceID] = set
	return set
}
