// Package compiled turns policy and preference documents into an
// indexed decision structure at registration time, so enforcement
// decisions cost the same at 1,000,000 registered preferences as at
// 10 (the paper's §V.C open problem).
//
// Three ideas compose:
//
//   - Dense rule IDs: every live preference (and override policy)
//     owns a small integer, reused after removal, so rule sets are
//     bitsets, not maps of documents.
//   - Posting buckets as bitsets: rules are pre-bucketed by subject,
//     observation kind, requesting service, and (for overrides)
//     purpose. Candidate selection is a block-wise bitset
//     intersection over the subject's own — tiny — set, independent
//     of the building's total rule count.
//   - Instruction programs: each rule's scope conditions are
//     flattened into a short conjunctive program (program.go) with
//     spatial containment resolved into a precomputed overlap set, so
//     matching a candidate never consults the spatial model or walks
//     a document.
//
// The Index itself is not safe for concurrent use; enforce.Compiled
// wraps it with the engine lock and the decision memo, and recompiles
// incrementally on every mutation.
package compiled

import (
	"sort"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

// Index is the compiled rule store.
type Index struct {
	overlaps *overlapSets

	// Preferences, addressed by dense ID.
	prefs   []prefEntry
	free    []uint32
	denseID map[string]uint32 // preference ID -> dense ID

	bySubject map[string]subjectBucket
	byKind    map[sensor.ObservationKind]*Set // "" = kind-wildcard bucket
	byService map[string]*Set                 // "" = service-wildcard bucket

	// Override policies, a separate (small) dense ID space. Non-
	// override policies never influence Decide — they are enforced at
	// capture/storage time by the BMS core — so only their count is
	// kept.
	pols        []polEntry
	polFree     []uint32
	polByKind   map[sensor.ObservationKind]*Set
	polByPurp   map[policy.Purpose]*Set
	policyCount int
}

// Matched is the slice of a preference the decision pipeline actually
// reads: identity for MatchedPreferences/notifications plus the rule
// to combine. The full ~300-byte Preference document stays with the
// registration layer; keeping entries to two cache lines is what makes
// the 1M-preference decide read as few cold lines as the 10-preference
// one.
type Matched struct {
	ID     string
	UserID string
	Name   string
	Rule   policy.Rule
}

type prefEntry struct {
	m    Matched
	prog program
}

// subjectBucket holds one subject's preference IDs. The dominant
// shape is a single preference per subject, stored inline (solo =
// id+1, multi = nil) so candidate selection costs one map probe and
// no pointer chase into a Set — at a million registered subjects
// those two extra cold reads are most of the decision latency. A
// second preference migrates the bucket to a Set; removal back down
// to one collapses it again.
type subjectBucket struct {
	solo  uint32 // id+1 when exactly one preference and multi == nil
	multi *Set
}

func (ix *Index) subjectAdd(key string, id uint32) {
	b := ix.bySubject[key]
	switch {
	case b.multi != nil:
		b.multi.Add(id)
	case b.solo == 0:
		ix.bySubject[key] = subjectBucket{solo: id + 1}
	default:
		s := &Set{}
		s.Add(b.solo - 1)
		s.Add(id)
		ix.bySubject[key] = subjectBucket{multi: s}
	}
}

func (ix *Index) subjectRemove(key string, id uint32) {
	b, ok := ix.bySubject[key]
	if !ok {
		return
	}
	if b.multi == nil {
		if b.solo == id+1 {
			delete(ix.bySubject, key)
		}
		return
	}
	b.multi.Remove(id)
	switch b.multi.Len() {
	case 0:
		delete(ix.bySubject, key)
	case 1:
		var only []uint32
		for _, blk := range b.multi.blocks {
			only = appendIDs(only, blk.key, blk.bits)
		}
		ix.bySubject[key] = subjectBucket{solo: only[0] + 1}
	}
}

type polEntry struct {
	pol  policy.BuildingPolicy
	prog program
}

// NewIndex returns an empty index compiling against the given spatial
// model (nil restricts spatial matching to exact IDs).
func NewIndex(spaces *spatial.Model) *Index {
	return &Index{
		overlaps:  newOverlapSets(spaces),
		denseID:   make(map[string]uint32),
		bySubject: make(map[string]subjectBucket),
		byKind:    make(map[sensor.ObservationKind]*Set),
		byService: make(map[string]*Set),
		polByKind: make(map[sensor.ObservationKind]*Set),
		polByPurp: make(map[policy.Purpose]*Set),
	}
}

func bucketAdd[K comparable](m map[K]*Set, key K, id uint32) {
	s := m[key]
	if s == nil {
		s = &Set{}
		m[key] = s
	}
	s.Add(id)
}

func bucketRemove[K comparable](m map[K]*Set, key K, id uint32) {
	if s := m[key]; s != nil {
		s.Remove(id)
		if s.Empty() {
			delete(m, key)
		}
	}
}

// AddPreference compiles and installs p (already validated by
// Preference.Check), replacing any previous rule with the same ID.
func (ix *Index) AddPreference(p policy.Preference) {
	if old, ok := ix.denseID[p.ID]; ok {
		ix.removeDense(old)
	}
	e := prefEntry{
		m:    Matched{ID: p.ID, UserID: p.UserID, Name: p.Name, Rule: p.Rule},
		prog: compileScope(p.Scope, ix.overlaps),
	}
	var id uint32
	if n := len(ix.free); n > 0 {
		id = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.prefs[id] = e
	} else {
		id = uint32(len(ix.prefs))
		ix.prefs = append(ix.prefs, e)
	}
	ix.denseID[p.ID] = id
	ix.subjectAdd(p.UserID, id)
	bucketAdd(ix.byKind, p.Scope.ObsKind, id)
	bucketAdd(ix.byService, p.Scope.ServiceID, id)
}

// RemovePreference uninstalls by preference ID, reporting whether it
// existed.
func (ix *Index) RemovePreference(id string) bool {
	dense, ok := ix.denseID[id]
	if !ok {
		return false
	}
	ix.removeDense(dense)
	return true
}

func (ix *Index) removeDense(dense uint32) {
	e := &ix.prefs[dense]
	delete(ix.denseID, e.m.ID)
	ix.subjectRemove(e.m.UserID, dense)
	// The program's inline fields are the bucket keys: an unset scope
	// dimension compiles to the zero value, which is exactly the
	// wildcard bucket key.
	bucketRemove(ix.byKind, e.prog.obsKind, dense)
	bucketRemove(ix.byService, e.prog.serviceID, dense)
	ix.prefs[dense] = prefEntry{}
	ix.free = append(ix.free, dense)
}

// AddPolicy installs a building policy (already validated by Check).
// Only override policies are compiled; others are counted and
// dropped, since Decide never consults them.
func (ix *Index) AddPolicy(p policy.BuildingPolicy) {
	ix.policyCount++
	if !p.Override {
		return
	}
	var id uint32
	if n := len(ix.polFree); n > 0 {
		id = ix.polFree[n-1]
		ix.polFree = ix.polFree[:n-1]
		ix.pols[id] = polEntry{pol: p, prog: compileScope(p.Scope, ix.overlaps)}
	} else {
		id = uint32(len(ix.pols))
		ix.pols = append(ix.pols, polEntry{pol: p, prog: compileScope(p.Scope, ix.overlaps)})
	}
	bucketAdd(ix.polByKind, p.Scope.ObsKind, id)
	purposes := p.Scope.Purposes
	if len(purposes) == 0 {
		bucketAdd(ix.polByPurp, policy.PurposeAny, id)
	} else {
		for _, purp := range purposes {
			bucketAdd(ix.polByPurp, purp, id)
		}
	}
}

// Counts returns installed (policies, preferences).
func (ix *Index) Counts() (int, int) { return ix.policyCount, len(ix.denseID) }

// PrefCandidates appends to dst the dense IDs of preferences that
// could match a request from serviceID for (subjectID, kind):
// subject ∩ (kind ∪ kind-wildcard) ∩ (service ∪ service-wildcard),
// block-wise. A kind- (or service-) scoped rule can never match a
// request with that dimension empty, so empty dimensions intersect
// the wildcard bucket alone.
func (ix *Index) PrefCandidates(subjectID string, kind sensor.ObservationKind, serviceID string, dst []uint32) []uint32 {
	b := ix.bySubject[subjectID]
	if b.multi == nil {
		// Inline single-preference bucket (or no bucket at all): the
		// one candidate's program re-checks every scope condition, so
		// no pruning is needed.
		if b.solo != 0 {
			dst = append(dst, b.solo-1)
		}
		return dst
	}
	sub := b.multi
	// Small subject buckets skip the kind/service intersection: each
	// Word lookup binary-searches buckets that grow with the total
	// preference count, while programs re-check every scope condition
	// anyway, so for a handful of candidates the pruning costs more
	// than the evaluations it saves — and the skip keeps per-decision
	// work independent of how many preferences OTHER subjects hold.
	if len(sub.blocks) <= 2 {
		for _, b := range sub.blocks {
			dst = appendIDs(dst, b.key, b.bits)
		}
		return dst
	}
	kindW := ix.byKind[""]
	var kindE *Set
	if kind != "" {
		kindE = ix.byKind[kind]
	}
	svcW := ix.byService[""]
	var svcE *Set
	if serviceID != "" {
		svcE = ix.byService[serviceID]
	}
	for _, b := range sub.blocks {
		w := b.bits & (kindE.Word(b.key) | kindW.Word(b.key)) & (svcE.Word(b.key) | svcW.Word(b.key))
		dst = appendIDs(dst, b.key, w)
	}
	return dst
}

// MatchPrefs program-evaluates the candidate dense IDs against ctx,
// appending the matching rules to dst sorted by preference ID (the
// order the decision pipeline requires). Callers may pass a reused
// buffer: the hot decide path recycles one through a pool so a match
// allocates nothing.
func (ix *Index) MatchPrefs(cands []uint32, ctx *policy.Context, dst []Matched) []Matched {
	matched := dst
	for _, id := range cands {
		if e := &ix.prefs[id]; e.prog.matches(ctx) {
			matched = append(matched, e.m)
		}
	}
	if len(matched) > 1 {
		sort.Slice(matched, func(i, j int) bool { return matched[i].ID < matched[j].ID })
	}
	return matched
}

// OverrideCandidates appends to dst the dense IDs of override
// policies that could match (kind, purpose):
// (kind ∪ kind-wildcard) ∩ (purpose ∪ purpose-wildcard).
func (ix *Index) OverrideCandidates(kind sensor.ObservationKind, purpose policy.Purpose, dst []uint32) []uint32 {
	kindW := ix.polByKind[""]
	var kindE *Set
	if kind != "" {
		kindE = ix.polByKind[kind]
	}
	purpW := ix.polByPurp[policy.PurposeAny]
	var purpE *Set
	if purpose != policy.PurposeAny {
		purpE = ix.polByPurp[purpose]
	}
	mergedKeys(kindE, kindW, func(key uint32, ew, ww uint64) {
		w := (ew | ww) & (purpE.Word(key) | purpW.Word(key))
		dst = appendIDs(dst, key, w)
	})
	return dst
}

// MatchOverride program-evaluates the candidate override policies
// against ctx and returns the lowest-ID match (ties must be engine-
// order independent), or nil.
func (ix *Index) MatchOverride(cands []uint32, ctx *policy.Context) *policy.BuildingPolicy {
	var winner *polEntry
	for _, id := range cands {
		e := &ix.pols[id]
		if !e.prog.matches(ctx) {
			continue
		}
		if winner == nil || e.pol.ID < winner.pol.ID {
			winner = e
		}
	}
	if winner == nil {
		return nil
	}
	return &winner.pol
}

// Stats describes the compiled state, for metrics.
type Stats struct {
	PreferencePrograms int
	OverridePrograms   int
	SubjectBuckets     int
	KindBuckets        int
	ServiceBuckets     int
}

// Stats returns current sizes.
func (ix *Index) Stats() Stats {
	return Stats{
		PreferencePrograms: len(ix.denseID),
		OverridePrograms:   len(ix.pols) - len(ix.polFree),
		SubjectBuckets:     len(ix.bySubject),
		KindBuckets:        len(ix.byKind),
		ServiceBuckets:     len(ix.byService),
	}
}
