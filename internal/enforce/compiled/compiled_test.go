package compiled

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/spatial"
)

func TestSetBasics(t *testing.T) {
	var s Set
	ids := []uint32{0, 1, 63, 64, 65, 640, 1<<20 + 3}
	for _, id := range ids {
		s.Add(id)
	}
	s.Add(64) // idempotent
	if got := s.Len(); got != len(ids) {
		t.Fatalf("Len = %d, want %d", got, len(ids))
	}
	for _, id := range ids {
		if !s.Contains(id) {
			t.Errorf("missing %d", id)
		}
	}
	for _, id := range []uint32{2, 62, 66, 1 << 21} {
		if s.Contains(id) {
			t.Errorf("phantom %d", id)
		}
	}
	s.Remove(63)
	s.Remove(63) // idempotent
	s.Remove(640)
	if s.Contains(63) || s.Contains(640) {
		t.Error("removed IDs still present")
	}
	if got := s.Len(); got != len(ids)-2 {
		t.Errorf("Len after removes = %d, want %d", got, len(ids)-2)
	}

	var nilSet *Set
	if nilSet.Contains(1) || nilSet.Len() != 0 || !nilSet.Empty() || nilSet.Word(0) != 0 {
		t.Error("nil set is not empty")
	}
}

// TestSetAgainstMap drives the sparse bitset against a plain map with
// a randomized add/remove workload.
func TestSetAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var s Set
	ref := map[uint32]bool{}
	for i := 0; i < 20000; i++ {
		id := uint32(r.Intn(4096))
		if r.Intn(3) == 0 {
			s.Remove(id)
			delete(ref, id)
		} else {
			s.Add(id)
			ref[id] = true
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
	}
	var got []uint32
	for _, b := range s.blocks {
		if b.bits == 0 {
			t.Fatal("empty block retained")
		}
		got = appendIDs(got, b.key, b.bits)
	}
	want := make([]uint32, 0, len(ref))
	for id := range ref {
		want = append(want, id)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ID enumeration diverges from reference map")
	}
}

func TestMergedKeys(t *testing.T) {
	var a, b Set
	a.Add(1)   // block 0
	a.Add(100) // block 1
	b.Add(70)  // block 1
	b.Add(200) // block 3
	type row struct {
		key    uint32
		aw, bw uint64
	}
	var got []row
	mergedKeys(&a, &b, func(key uint32, aw, bw uint64) { got = append(got, row{key, aw, bw}) })
	want := []row{
		{0, 1 << 1, 0},
		{1, 1 << (100 - 64), 1 << (70 - 64)},
		{3, 0, 1 << (200 - 192)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergedKeys = %+v, want %+v", got, want)
	}
	mergedKeys(nil, nil, func(uint32, uint64, uint64) { t.Fatal("fn called for nil sets") })
}

func testSpaces(t *testing.T) *spatial.Model {
	t.Helper()
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "b", Kind: spatial.KindBuilding})
	m.MustAdd("b", spatial.Space{ID: "b/1", Kind: spatial.KindFloor, Floor: 1})
	m.MustAdd("b/1", spatial.Space{ID: "b/1/r0", Kind: spatial.KindRoom, Floor: 1})
	m.MustAdd("b", spatial.Space{ID: "b/2", Kind: spatial.KindFloor, Floor: 2})
	return m
}

// TestProgramMatchesScope: for randomized scopes and contexts, the
// compiled program must return exactly what Scope.MatchesRequest
// returns — clause for clause, including the bidirectional spatial
// containment and the zero-time window rule.
func TestProgramMatchesScope(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	spaces := testSpaces(t)
	overlaps := newOverlapSets(spaces)
	spaceIDs := []string{"", "b", "b/1", "b/1/r0", "b/2", "ghost"}
	kinds := []sensor.ObservationKind{"", sensor.ObsWiFiConnect, sensor.ObsOccupancy}
	purposes := []policy.Purpose{policy.PurposeProvidingService, policy.PurposeAnalytics}

	randScope := func() policy.Scope {
		var s policy.Scope
		s.SpaceID = spaceIDs[r.Intn(len(spaceIDs))]
		s.ObsKind = kinds[r.Intn(len(kinds))]
		if r.Intn(3) == 0 {
			s.SensorType = sensor.Type(1 + r.Intn(3))
		}
		if r.Intn(3) == 0 {
			s.ServiceID = fmt.Sprintf("svc-%d", r.Intn(2))
		}
		if r.Intn(3) == 0 {
			s.Purposes = []policy.Purpose{purposes[r.Intn(len(purposes))]}
		}
		if r.Intn(4) == 0 {
			s.SubjectIDs = []string{fmt.Sprintf("u%d", r.Intn(3))}
		}
		if r.Intn(4) == 0 {
			s.SubjectGroups = []profile.Group{profile.GroupStudent}
		}
		if r.Intn(3) == 0 {
			s.Window = policy.AfterHours
		}
		return s
	}
	randCtx := func() policy.Context {
		ctx := policy.Context{
			SpaceID:   spaceIDs[r.Intn(len(spaceIDs))],
			ObsKind:   kinds[r.Intn(len(kinds))],
			Purpose:   purposes[r.Intn(len(purposes))],
			SubjectID: fmt.Sprintf("u%d", r.Intn(3)),
			ServiceID: fmt.Sprintf("svc-%d", r.Intn(2)),
		}
		if r.Intn(3) == 0 {
			ctx.SensorType = sensor.Type(1 + r.Intn(3))
		}
		if r.Intn(2) == 0 {
			ctx.SubjectGroups = []profile.Group{profile.GroupStudent}
		}
		if r.Intn(8) != 0 {
			ctx.Time = time.Date(2017, time.June, 1+r.Intn(28), r.Intn(24), r.Intn(60), 0, 0, time.UTC)
		}
		return ctx
	}

	for i := 0; i < 5000; i++ {
		scope := randScope()
		prog := compileScope(scope, overlaps)
		ctx := randCtx()
		want := scope.MatchesRequest(ctx, spaces)
		if got := prog.matches(&ctx); got != want {
			t.Fatalf("iteration %d: program = %v, MatchesRequest = %v\nscope: %+v\nctx: %+v", i, got, want, scope, ctx)
		}
	}
}

func TestOverlapSets(t *testing.T) {
	o := newOverlapSets(testSpaces(t))
	got := o.get("b/1")
	for _, id := range []string{"b/1", "b", "b/1/r0"} {
		if _, ok := got[id]; !ok {
			t.Errorf("b/1 overlap set missing %s", id)
		}
	}
	if _, ok := got["b/2"]; ok {
		t.Error("sibling floor in overlap set")
	}
	if ghost := o.get("ghost"); len(ghost) != 1 {
		t.Errorf("unknown space overlap set = %v, want self only", ghost)
	}
	if o.get("b/1"); len(o.sets) != 2 {
		t.Errorf("memoization failed: %d sets", len(o.sets))
	}

	// nil model: exact-ID matching only.
	noModel := newOverlapSets(nil)
	if set := noModel.get("b/1"); len(set) != 1 {
		t.Errorf("nil-model overlap set = %v", set)
	}
}

func TestIndexFreeListReuse(t *testing.T) {
	ix := NewIndex(nil)
	for i := 0; i < 10; i++ {
		ix.AddPreference(policy.Preference{ID: fmt.Sprintf("p%d", i), UserID: "u"})
	}
	for i := 0; i < 10; i++ {
		if !ix.RemovePreference(fmt.Sprintf("p%d", i)) {
			t.Fatal("remove failed")
		}
	}
	// Dense IDs must be recycled, not grown.
	for i := 0; i < 10; i++ {
		ix.AddPreference(policy.Preference{ID: fmt.Sprintf("q%d", i), UserID: "u"})
	}
	if len(ix.prefs) != 10 {
		t.Errorf("dense space grew to %d entries for 10 live rules", len(ix.prefs))
	}
	if _, prefs := ix.Counts(); prefs != 10 {
		t.Errorf("Counts = %d", prefs)
	}
	// Replacing under the same ID must not leak a dense slot either.
	ix.AddPreference(policy.Preference{ID: "q0", UserID: "v"})
	if len(ix.prefs) != 10 {
		t.Errorf("replace leaked a dense slot: %d entries", len(ix.prefs))
	}
	cands := ix.PrefCandidates("v", "", "", nil)
	if len(cands) != 1 {
		t.Fatalf("replaced rule not found under new subject: %v", cands)
	}
	if got := ix.PrefCandidates("u", "", "", nil); len(got) != 9 {
		t.Errorf("stale subject bucket: %d candidates, want 9", len(got))
	}
}
