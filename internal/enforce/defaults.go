package enforce

import (
	"errors"
	"fmt"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
)

// GroupDefault is a building-configured default rule for a user
// class, implementing the paper's §IV.A.2 observation that profiles
// "can be based on groups (students, faculty, staff etc.) and share
// common properties (e.g., access permissions)". Defaults apply only
// when the subject has no personal preference matching the flow: a
// user's own choice — explicit or IoTA-learned — always wins over
// their group's default.
//
// Typical deployments: visitors default to coarse location, staff
// default to allowing the comfort subsystem, everyone defaults to
// denying third-party marketing.
type GroupDefault struct {
	ID string
	// Groups the default applies to; empty means every subject.
	Groups []profile.Group
	// Scope selects the flows, like a preference scope (subject
	// fields must stay empty — the group list is the subject filter).
	Scope policy.Scope
	// Rule is the default decision.
	Rule policy.Rule
}

// Check validates the default.
func (g GroupDefault) Check() error {
	if g.ID == "" {
		return errors.New("enforce: group default needs an ID")
	}
	if len(g.Scope.SubjectIDs) > 0 || len(g.Scope.SubjectGroups) > 0 {
		return fmt.Errorf("enforce: group default %s must use Groups, not scope subjects", g.ID)
	}
	return g.Rule.Check()
}

// matchDefaults combines the rules of every default applying to the
// subject's groups and the request context. Called only when no
// personal preference matched. Returns the matched IDs.
func (e *evaluator) matchDefaults(ctx policy.Context, subjectGroups []profile.Group) ([]policy.Rule, []string) {
	var rules []policy.Rule
	var ids []string
	for _, d := range e.cfg.GroupDefaults {
		if len(d.Groups) > 0 && !groupsOverlap(d.Groups, subjectGroups) {
			continue
		}
		if !d.Scope.MatchesRequest(ctx, e.cfg.Spaces) {
			continue
		}
		rules = append(rules, d.Rule)
		ids = append(ids, d.ID)
	}
	return rules, ids
}

func groupsOverlap(a, b []profile.Group) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
