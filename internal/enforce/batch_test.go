package enforce

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
)

// batchItems builds a batch of per-subject requests with a mix of
// outcomes: subjects with deny preferences, with limit preferences,
// and with no preferences at all.
func batchItems(t *testing.T, eng Engine, n int) []BatchItem {
	t.Helper()
	subjects := []struct {
		id     string
		groups []profile.Group
	}{
		{"mary", []profile.Group{"faculty"}},
		{"bob", nil},
		{"carol", []profile.Group{"student"}},
		{"dave", nil},
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := eng.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.AddPreference(policy.CoarseLocationPreference("carol", "concierge")); err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, n)
	for i := range items {
		sub := subjects[i%len(subjects)]
		req := baseRequest()
		req.SubjectID = sub.id
		req.Time = req.Time.Add(time.Duration(i/len(subjects)) * time.Hour)
		items[i] = BatchItem{Req: req, Groups: sub.groups}
	}
	return items
}

// TestDecideBatchMatchesSerial: the pool must produce exactly the
// decisions a serial Decide loop would, in item order, at every
// parallelism level.
func TestDecideBatchMatchesSerial(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	eng := NewIndexed(cfg)
	items := batchItems(t, eng, 40)

	want := make([]Decision, len(items))
	for i, it := range items {
		want[i] = eng.Decide(it.Req, it.Groups)
	}
	for _, par := range []int{0, 1, 2, 8, 100} {
		got := DecideBatch(eng, items, BatchOptions{Parallelism: par})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism=%d: batch decisions diverge from serial loop", par)
		}
	}
	// Sanity: the fixture actually exercises all three outcomes.
	var denied, limited, allowed int
	for _, d := range want {
		switch {
		case !d.Allowed:
			denied++
		case d.Effective.Action == policy.ActionLimit:
			limited++
		default:
			allowed++
		}
	}
	if denied == 0 || limited == 0 || allowed == 0 {
		t.Fatalf("fixture too uniform: denied=%d limited=%d allowed=%d", denied, limited, allowed)
	}
}

// TestDecideBatchObserve: the Observe hook fires once per item and
// tolerates concurrent invocation.
func TestDecideBatchObserve(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	eng := NewIndexed(cfg)
	items := batchItems(t, eng, 25)

	var calls atomic.Int64
	var mu sync.Mutex
	var seenDenied int
	DecideBatch(eng, items, BatchOptions{
		Parallelism: 8,
		Observe: func(d Decision, elapsed time.Duration) {
			calls.Add(1)
			if elapsed < 0 {
				t.Error("negative latency observed")
			}
			mu.Lock()
			if !d.Allowed {
				seenDenied++
			}
			mu.Unlock()
		},
	})
	if got := calls.Load(); got != int64(len(items)) {
		t.Fatalf("Observe fired %d times, want %d", got, len(items))
	}
	if seenDenied == 0 {
		t.Fatal("Observe never saw a denial")
	}
}

// TestDecideBatchEmpty: a zero-length batch returns a zero-length
// (non-nil-safe) slice without touching the engine.
func TestDecideBatchEmpty(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	if got := DecideBatch(NewIndexed(cfg), nil, BatchOptions{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d decisions", len(got))
	}
}

// TestDecideBatchSharesCache: batching over the memoized compiled
// engine must reuse its decision memo — repeated identical items hit
// the memo instead of re-running candidate selection. This is the
// property that makes the aggregate path's fan-out cheaper, not just
// wider.
func TestDecideBatchSharesCache(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	reference := NewIndexed(cfg)
	memoized := NewCompiled(cfg)
	batchItems(t, reference, 1) // install the same rule fixture
	items := batchItems(t, memoized, 60)
	for i := range items {
		// Same minute for every repetition: 4 distinct subjects → 4
		// cache keys → 56 of the 60 decisions should be memo hits.
		items[i].Req.Time = items[0].Req.Time
	}

	serial := make([]Decision, len(items))
	for i, it := range items {
		serial[i] = reference.Decide(it.Req, it.Groups)
	}
	got := DecideBatch(memoized, items, BatchOptions{Parallelism: 8})
	hitCount := 0
	for i := range got {
		if got[i].FromCache {
			hitCount++
			got[i].FromCache = false // only provenance may differ
		}
	}
	if !reflect.DeepEqual(got, serial) {
		t.Fatal("memoized batch decisions diverge from memo-free serial loop")
	}
	if hitCount == 0 {
		t.Fatal("no decision in the batch was marked FromCache")
	}
	hits, misses := memoized.Stats()
	if hits == 0 {
		t.Fatalf("no memo hits across a repetitive batch (hits=%d misses=%d)", hits, misses)
	}
}
