package enforce

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// Shared generator vocabulary for the differential tests: every value
// pool deliberately mixes hits and misses (spaces off the model, undeclared
// purposes, empty dimensions) so candidate selection is exercised on
// both its include and exclude edges.
var (
	diffUsers    = []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	diffKinds    = []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting, sensor.ObsOccupancy, sensor.ObsPowerReading, ""}
	diffSpaces   = []string{"", "dbh", "dbh/1", "dbh/2", "dbh/1/r0", "dbh/2/r1", "dbh/2/r3", "annex"}
	diffServices = []string{"", "concierge", "smart-meeting", "food-delivery", "ghost-service"}
	diffPurposes = []policy.Purpose{
		policy.PurposeProvidingService, policy.PurposeEmergencyResponse,
		policy.PurposeSecurity, policy.PurposeAnalytics, policy.PurposeMarketing,
	}
	diffWindows = []policy.DailyWindow{
		{}, // no window
		policy.AfterHours,
		policy.BusinessHours,
		{Start: 23 * 60, End: 1 * 60}, // wraps midnight
	}
)

func randDiffRule(r *rand.Rand) policy.Rule {
	switch r.Intn(4) {
	case 0:
		return policy.Rule{Action: policy.ActionAllow}
	case 1:
		return policy.Rule{Action: policy.ActionDeny}
	case 2:
		return policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.Granularity(1 + r.Intn(5))}
	default:
		return policy.Rule{
			Action:          policy.ActionLimit,
			MaxGranularity:  policy.Granularity(1 + r.Intn(5)),
			NoiseEpsilon:    float64(1+r.Intn(10)) / 2,
			MinAggregationK: r.Intn(5),
		}
	}
}

func randDiffPreference(r *rand.Rand, id int) policy.Preference {
	p := policy.Preference{
		ID:     fmt.Sprintf("pref-%d", id),
		UserID: diffUsers[r.Intn(len(diffUsers))],
		Scope: policy.Scope{
			SpaceID:   diffSpaces[r.Intn(len(diffSpaces))],
			ObsKind:   diffKinds[r.Intn(len(diffKinds))],
			ServiceID: diffServices[r.Intn(len(diffServices))],
			Window:    diffWindows[r.Intn(len(diffWindows))],
		},
		Rule: randDiffRule(r),
	}
	// A random purpose subset, sometimes empty (purpose-wildcard).
	for _, purp := range diffPurposes {
		if r.Intn(5) == 0 {
			p.Scope.Purposes = append(p.Scope.Purposes, purp)
		}
	}
	return p
}

func randDiffOverride(r *rand.Rand, id int) policy.BuildingPolicy {
	bp := policy.Policy2EmergencyLocation("dbh")
	bp.ID = fmt.Sprintf("ovr-%02d", id)
	bp.Scope.ObsKind = diffKinds[r.Intn(len(diffKinds))]
	bp.Scope.SpaceID = diffSpaces[1+r.Intn(len(diffSpaces)-1)]
	if r.Intn(3) == 0 {
		bp.Scope.SubjectGroups = []profile.Group{profile.GroupStudent}
	}
	if r.Intn(3) == 0 {
		// Security is the other safety-critical purpose; a two-purpose
		// override exercises the per-purpose posting buckets.
		bp.Scope.Purposes = append(bp.Scope.Purposes, policy.PurposeSecurity)
	}
	return bp
}

func randDiffRequest(r *rand.Rand) Request {
	req := Request{
		ServiceID:   diffServices[r.Intn(len(diffServices))],
		Purpose:     diffPurposes[r.Intn(len(diffPurposes))],
		Kind:        diffKinds[r.Intn(len(diffKinds))],
		SubjectID:   diffUsers[r.Intn(len(diffUsers))],
		SpaceID:     diffSpaces[r.Intn(len(diffSpaces))],
		Granularity: policy.Granularity(r.Intn(6)),
		Time:        time.Date(2017, time.June, 1+r.Intn(28), r.Intn(24), r.Intn(60), 0, 0, time.UTC),
	}
	if r.Intn(16) == 0 {
		req.Time = time.Time{} // "now"
	}
	return req
}

// TestCompiledMatchesNaive is the differential property test behind
// the compiled engine: on randomized rule populations, randomized
// requests, and randomized mid-stream mutations, the compiled engine
// (with and without its decision memo) must make decisions identical
// to the naive scan-everything engine — including the matched-rule
// sets, not just the verdicts. CI runs it repeatedly under -race.
func TestCompiledMatchesNaive(t *testing.T) {
	seeds := []int64{1, 2, 3, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: seed%2 == 0}
			engines := map[string]Engine{
				"naive":           NewNaive(cfg),
				"compiled-nomemo": NewIndexed(cfg),
				"compiled":        NewCompiledMemo(cfg, 512), // small cap: exercise resets
			}
			addPref := func(p policy.Preference) {
				for name, e := range engines {
					if err := e.AddPreference(p); err != nil {
						t.Fatalf("%s: AddPreference(%s): %v", name, p.ID, err)
					}
				}
			}
			removePref := func(id string) {
				got := map[string]bool{}
				for name, e := range engines {
					got[name] = e.RemovePreference(id)
				}
				if got["naive"] != got["compiled-nomemo"] || got["naive"] != got["compiled"] {
					t.Fatalf("RemovePreference(%s) disagrees: %v", id, got)
				}
			}

			nextPref := 0
			for ; nextPref < 200; nextPref++ {
				addPref(randDiffPreference(r, nextPref))
			}
			for i := 0; i < 6; i++ {
				bp := randDiffOverride(r, i)
				for name, e := range engines {
					if err := e.AddPolicy(bp); err != nil {
						t.Fatalf("%s: AddPolicy(%s): %v", name, bp.ID, err)
					}
				}
			}

			naive := engines["naive"]
			for trial := 0; trial < 3000; trial++ {
				// Mid-stream churn: the compiled engine recompiles
				// incrementally, the naive engine just appends — they
				// must stay in lockstep through adds, replaces, and
				// removals.
				if trial%100 == 50 {
					switch r.Intn(3) {
					case 0:
						addPref(randDiffPreference(r, nextPref))
						nextPref++
					case 1:
						removePref(fmt.Sprintf("pref-%d", r.Intn(nextPref)))
					default:
						// Replace under an existing ID.
						addPref(randDiffPreference(r, r.Intn(nextPref)))
					}
				}
				req := randDiffRequest(r)
				var groups []profile.Group
				switch r.Intn(3) {
				case 0:
					groups = []profile.Group{profile.GroupStudent}
				case 1:
					groups = []profile.Group{profile.GroupFaculty, profile.GroupVisitor}
				}
				want := normalizeDecision(naive.Decide(req, groups))
				for name, e := range engines {
					if e == naive {
						continue
					}
					if got := normalizeDecision(e.Decide(req, groups)); !reflect.DeepEqual(want, got) {
						t.Fatalf("trial %d: %s disagrees with naive\nreq: %+v\ngroups: %v\nnaive: %+v\n%s: %+v",
							trial, name, req, groups, want, name, got)
					}
				}
			}

			// Counts must agree exactly after all the churn.
			wantPol, wantPref := naive.Counts()
			for name, e := range engines {
				if pol, pref := e.Counts(); pol != wantPol || pref != wantPref {
					t.Errorf("%s: Counts() = (%d, %d), naive (%d, %d)", name, pol, pref, wantPol, wantPref)
				}
			}
		})
	}
}

// TestCompiledCandidateReduction pins the point of compilation: on a
// many-subject population the compiled engine consults a candidate
// set orders of magnitude smaller than the full rule count, while the
// naive engine scans everything.
func TestCompiledCandidateReduction(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	naive := NewNaive(cfg)
	compiled := NewIndexed(cfg)
	const subjects = 2000
	for i := 0; i < subjects; i++ {
		user := fmt.Sprintf("subj-%04d", i)
		p := policy.Preference{
			ID: "p-" + user, UserID: user,
			Scope: policy.Scope{ServiceID: "concierge"},
			Rule:  policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranBuilding},
		}
		if err := naive.AddPreference(p); err != nil {
			t.Fatal(err)
		}
		if err := compiled.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	req := baseRequest()
	req.SubjectID = "subj-1234"
	dn := naive.Decide(req, nil)
	dc := compiled.Decide(req, nil)
	if !reflect.DeepEqual(normalizeDecision(dn), normalizeDecision(dc)) {
		t.Fatalf("engines disagree: naive %+v, compiled %+v", dn, dc)
	}
	if dn.PreferencesConsulted != subjects {
		t.Errorf("naive consulted %d, want %d", dn.PreferencesConsulted, subjects)
	}
	if dc.PreferencesConsulted > 4 {
		t.Errorf("compiled consulted %d candidates for a single-pref subject", dc.PreferencesConsulted)
	}
}

// TestNewEngineFlavors covers the -enforce-engine escape hatch.
func TestNewEngineFlavors(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	for flavor, want := range map[string]string{
		"":                "compiled",
		"compiled":        "compiled",
		"cached":          "compiled",
		"compiled-nomemo": "compiled-nomemo",
		"indexed":         "compiled-nomemo",
		"naive":           "naive",
	} {
		e, err := New(flavor, cfg)
		if err != nil {
			t.Fatalf("New(%q): %v", flavor, err)
		}
		if got := EngineName(e); got != want {
			t.Errorf("New(%q) = %s, want %s", flavor, got, want)
		}
	}
	if _, err := New("quantum", cfg); err == nil {
		t.Error("unknown flavor accepted")
	}
}
