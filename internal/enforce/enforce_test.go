package enforce

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/privacy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
)

func testModel(t testing.TB) *spatial.Model {
	t.Helper()
	m := spatial.NewModel()
	m.MustAdd("", spatial.Space{ID: "dbh", Kind: spatial.KindBuilding})
	for f := 1; f <= 2; f++ {
		fid := fmt.Sprintf("dbh/%d", f)
		m.MustAdd("dbh", spatial.Space{ID: fid, Kind: spatial.KindFloor, Floor: f})
		for r := 0; r < 4; r++ {
			m.MustAdd(fid, spatial.Space{ID: fmt.Sprintf("%s/r%d", fid, r), Kind: spatial.KindRoom, Floor: f})
		}
	}
	return m
}

func testServices(t testing.TB) *service.Registry {
	t.Helper()
	reg := service.NewRegistry()
	reg.MustRegister(service.Concierge())
	reg.MustRegister(service.SmartMeeting())
	reg.MustRegister(service.FoodDelivery())
	return reg
}

func bothEngines(t testing.TB, cfg Config) map[string]Engine {
	t.Helper()
	return map[string]Engine{
		"naive":   NewNaive(cfg),
		"indexed": NewIndexed(cfg),
	}
}

func baseRequest() Request {
	return Request{
		ServiceID:   "concierge",
		Purpose:     policy.PurposeProvidingService,
		Kind:        sensor.ObsWiFiConnect,
		SubjectID:   "mary",
		SpaceID:     "dbh/2/r1",
		Granularity: policy.GranExact,
		Time:        time.Date(2017, time.June, 7, 14, 0, 0, 0, time.UTC),
	}
}

func TestDefaultAllowAndDeny(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		d := eng.Decide(baseRequest(), nil)
		if !d.Allowed || d.Granularity != policy.GranExact {
			t.Errorf("%s: default-allow decision = %+v", name, d)
		}
	}
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: false}) {
		d := eng.Decide(baseRequest(), nil)
		if d.Allowed || d.DenyReason == "" {
			t.Errorf("%s: default-deny decision = %+v", name, d)
		}
	}
}

func TestPurposeBinding(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		req := baseRequest()
		req.Purpose = policy.PurposeMarketing // concierge never declared marketing
		if d := eng.Decide(req, nil); d.Allowed {
			t.Errorf("%s: undeclared purpose allowed", name)
		}
		req = baseRequest()
		req.ServiceID = "ghost-service"
		if d := eng.Decide(req, nil); d.Allowed {
			t.Errorf("%s: unknown service allowed", name)
		}
		// Power readings were never declared by concierge.
		req = baseRequest()
		req.Kind = sensor.ObsPowerReading
		if d := eng.Decide(req, nil); d.Allowed {
			t.Errorf("%s: undeclared kind allowed", name)
		}
	}
}

func TestServiceDeclaredGranularityClamps(t *testing.T) {
	// Food delivery declared floor granularity; even an exact request
	// must be clamped to floor.
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		req := baseRequest()
		req.ServiceID = "food-delivery"
		d := eng.Decide(req, nil)
		if !d.Allowed || d.Granularity != policy.GranFloor {
			t.Errorf("%s: decision = %+v, want floor clamp", name, d)
		}
	}
}

func TestDenyPreference(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		for _, p := range policy.Preference2NoLocation("mary") {
			if err := eng.AddPreference(p); err != nil {
				t.Fatal(err)
			}
		}
		d := eng.Decide(baseRequest(), nil)
		if d.Allowed {
			t.Errorf("%s: Preference 2 did not deny: %+v", name, d)
		}
		// Another user is unaffected.
		req := baseRequest()
		req.SubjectID = "bob"
		if d := eng.Decide(req, nil); !d.Allowed {
			t.Errorf("%s: other subject denied: %+v", name, d)
		}
	}
}

func TestLimitPreferenceClampsGranularity(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		if err := eng.AddPreference(policy.CoarseLocationPreference("mary", "concierge")); err != nil {
			t.Fatal(err)
		}
		d := eng.Decide(baseRequest(), nil)
		if !d.Allowed || d.Granularity != policy.GranBuilding {
			t.Errorf("%s: decision = %+v, want building granularity", name, d)
		}
		if len(d.MatchedPreferences) != 1 {
			t.Errorf("%s: matched = %v", name, d.MatchedPreferences)
		}
	}
}

// TestPolicy2OverridesPreference2 is the paper's central enforcement
// scenario at the engine level: emergency requests are released
// despite the opt-out, with a notification; non-emergency requests
// stay denied.
func TestPolicy2OverridesPreference2(t *testing.T) {
	svcReg := testServices(t)
	svcReg.MustRegister(service.Service{
		ID:        "bms-emergency",
		Name:      "BMS Emergency Response",
		Developer: service.DeveloperBuilding,
		Declares: []service.DataRequest{{
			ObsKind:     sensor.ObsWiFiConnect,
			Purpose:     policy.PurposeEmergencyResponse,
			Granularity: policy.GranExact,
		}},
	})
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: svcReg, DefaultAllow: true}) {
		if err := eng.AddPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
			t.Fatal(err)
		}
		for _, p := range policy.Preference2NoLocation("mary") {
			if err := eng.AddPreference(p); err != nil {
				t.Fatal(err)
			}
		}
		// Emergency request: released with notification.
		req := baseRequest()
		req.ServiceID = "bms-emergency"
		req.Purpose = policy.PurposeEmergencyResponse
		d := eng.Decide(req, nil)
		if !d.Allowed {
			t.Fatalf("%s: emergency request denied: %+v", name, d)
		}
		if len(d.Overridden) == 0 || len(d.Notifications) == 0 {
			t.Errorf("%s: override without notification: %+v", name, d)
		}
		if d.Notifications[0].UserID != "mary" || d.Notifications[0].PolicyID != "policy-2-emergency-location" {
			t.Errorf("%s: notification = %+v", name, d.Notifications[0])
		}
		// Non-emergency request: still denied. Policy 2's scope names
		// emergency_response, so it cannot be stretched to concierge.
		d = eng.Decide(baseRequest(), nil)
		if d.Allowed {
			t.Errorf("%s: override leaked to non-emergency purpose: %+v", name, d)
		}
	}
}

func TestWindowedPreference(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		smReq := Request{
			ServiceID: "smart-meeting",
			Purpose:   policy.PurposeProvidingService,
			Kind:      sensor.ObsOccupancy,
			SubjectID: "mary",
			SpaceID:   "dbh/2/r1",
		}
		if err := eng.AddPreference(policy.Preference1OfficeOccupancy("mary", "dbh/2/r1")); err != nil {
			t.Fatal(err)
		}
		smReq.Time = time.Date(2017, time.June, 7, 22, 0, 0, 0, time.UTC) // 10pm
		if d := eng.Decide(smReq, nil); d.Allowed {
			t.Errorf("%s: after-hours occupancy released: %+v", name, d)
		}
		smReq.Time = time.Date(2017, time.June, 7, 11, 0, 0, 0, time.UTC) // 11am
		if d := eng.Decide(smReq, nil); !d.Allowed {
			t.Errorf("%s: business-hours occupancy denied: %+v", name, d)
		}
	}
}

func TestSpatialScopedPreference(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		// Deny everything on floor 2 only.
		if err := eng.AddPreference(policy.Preference{
			ID: "floor2-deny", UserID: "mary",
			Scope: policy.Scope{SpaceID: "dbh/2"},
			Rule:  policy.Rule{Action: policy.ActionDeny},
		}); err != nil {
			t.Fatal(err)
		}
		req := baseRequest() // dbh/2/r1 is on floor 2
		if d := eng.Decide(req, nil); d.Allowed {
			t.Errorf("%s: floor-2 deny missed a room on floor 2", name)
		}
		req.SpaceID = "dbh/1/r0"
		if d := eng.Decide(req, nil); !d.Allowed {
			t.Errorf("%s: floor-2 deny leaked to floor 1", name)
		}
	}
}

func TestRemoveAndReplacePreference(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		pref := policy.CoarseLocationPreference("mary", "concierge")
		if err := eng.AddPreference(pref); err != nil {
			t.Fatal(err)
		}
		if _, prefs := eng.Counts(); prefs != 1 {
			t.Errorf("%s: count = %d", name, prefs)
		}
		// Replace with a deny under the same ID.
		pref.Rule = policy.Rule{Action: policy.ActionDeny}
		if err := eng.AddPreference(pref); err != nil {
			t.Fatal(err)
		}
		if _, prefs := eng.Counts(); prefs != 1 {
			t.Errorf("%s: replace duplicated: %d", name, prefs)
		}
		if d := eng.Decide(baseRequest(), nil); d.Allowed {
			t.Errorf("%s: replaced rule not in effect", name)
		}
		if !eng.RemovePreference(pref.ID) {
			t.Errorf("%s: RemovePreference failed", name)
		}
		if eng.RemovePreference(pref.ID) {
			t.Errorf("%s: double remove succeeded", name)
		}
		if d := eng.Decide(baseRequest(), nil); !d.Allowed {
			t.Errorf("%s: removed rule still in effect", name)
		}
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	for name, eng := range bothEngines(t, Config{}) {
		if err := eng.AddPreference(policy.Preference{ID: "x"}); err == nil {
			t.Errorf("%s: invalid preference accepted", name)
		}
		if err := eng.AddPolicy(policy.BuildingPolicy{ID: "x"}); err == nil {
			t.Errorf("%s: invalid policy accepted", name)
		}
	}
}

func TestGroupScopedPreference(t *testing.T) {
	// Group scopes appear in building policies, not user preferences
	// (Preference.Check forbids them), but the engine must still match
	// subject groups for override policies scoped to groups.
	svcReg := testServices(t)
	cfg := Config{Spaces: testModel(t), Services: svcReg, DefaultAllow: true}
	for name, eng := range bothEngines(t, cfg) {
		bp := policy.Policy2EmergencyLocation("dbh")
		bp.Scope.SubjectGroups = []profile.Group{profile.GroupStudent}
		if err := eng.AddPolicy(bp); err != nil {
			t.Fatal(err)
		}
		for _, p := range policy.Preference2NoLocation("mary") {
			if err := eng.AddPreference(p); err != nil {
				t.Fatal(err)
			}
		}
		svcReg.Get("concierge") // keep registry warm; not essential
		req := baseRequest()
		req.ServiceID = ""
		req.Purpose = policy.PurposeEmergencyResponse
		// mary is a student: override applies.
		if d := eng.Decide(req, []profile.Group{profile.GroupStudent}); !d.Allowed {
			t.Errorf("%s: student not overridden: %+v", name, d)
		}
		// mary as faculty: policy's group scope does not match; deny holds.
		if d := eng.Decide(req, []profile.Group{profile.GroupFaculty}); d.Allowed {
			t.Errorf("%s: non-student overridden", name)
		}
	}
}

func normalizeDecision(d Decision) Decision {
	d.PoliciesConsulted = 0
	d.PreferencesConsulted = 0
	d.FromCache = false
	sort.Strings(d.MatchedPreferences)
	sort.Strings(d.Overridden)
	sort.Slice(d.Notifications, func(i, j int) bool {
		return d.Notifications[i].PreferenceID < d.Notifications[j].PreferenceID
	})
	return d
}

// TestEngineEquivalenceProperty: Naive and Indexed must make
// identical decisions on randomized rule sets and requests. This is
// the correctness half of the E2 ablation.
func TestEngineEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2017))
	spaces := testModel(t)
	svcs := testServices(t)
	cfg := Config{Spaces: spaces, Services: svcs, DefaultAllow: true}
	naive := NewNaive(cfg)
	indexed := NewIndexed(cfg)

	users := []string{"u0", "u1", "u2", "u3", "u4"}
	kinds := []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting, sensor.ObsOccupancy, ""}
	spacesList := []string{"", "dbh", "dbh/1", "dbh/2", "dbh/2/r1"}
	serviceIDs := []string{"", "concierge", "smart-meeting", "food-delivery"}
	purposes := []policy.Purpose{policy.PurposeProvidingService, policy.PurposeEmergencyResponse}

	randRule := func() policy.Rule {
		switch r.Intn(3) {
		case 0:
			return policy.Rule{Action: policy.ActionAllow}
		case 1:
			return policy.Rule{Action: policy.ActionDeny}
		default:
			g := policy.Granularity(1 + r.Intn(5))
			return policy.Rule{Action: policy.ActionLimit, MaxGranularity: g}
		}
	}

	for i := 0; i < 300; i++ {
		p := policy.Preference{
			ID:     fmt.Sprintf("pref-%d", i),
			UserID: users[r.Intn(len(users))],
			Scope: policy.Scope{
				SpaceID:   spacesList[r.Intn(len(spacesList))],
				ObsKind:   kinds[r.Intn(len(kinds))],
				ServiceID: serviceIDs[r.Intn(len(serviceIDs))],
			},
			Rule: randRule(),
		}
		if r.Intn(4) == 0 {
			p.Scope.Window = policy.AfterHours
		}
		if err := naive.AddPreference(p); err != nil {
			t.Fatal(err)
		}
		if err := indexed.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		bp := policy.Policy2EmergencyLocation("dbh")
		bp.ID = fmt.Sprintf("policy-override-%d", i)
		bp.Scope.ObsKind = kinds[r.Intn(3)]
		if err := naive.AddPolicy(bp); err != nil {
			t.Fatal(err)
		}
		if err := indexed.AddPolicy(bp); err != nil {
			t.Fatal(err)
		}
	}

	for trial := 0; trial < 2000; trial++ {
		req := Request{
			ServiceID:   serviceIDs[r.Intn(len(serviceIDs))],
			Purpose:     purposes[r.Intn(len(purposes))],
			Kind:        kinds[r.Intn(len(kinds))],
			SubjectID:   users[r.Intn(len(users))],
			SpaceID:     spacesList[1+r.Intn(len(spacesList)-1)],
			Granularity: policy.Granularity(1 + r.Intn(5)),
			Time:        time.Date(2017, time.June, 1+r.Intn(28), r.Intn(24), 0, 0, 0, time.UTC),
		}
		var groups []profile.Group
		if r.Intn(2) == 0 {
			groups = []profile.Group{profile.GroupStudent}
		}
		a := normalizeDecision(naive.Decide(req, groups))
		b := normalizeDecision(indexed.Decide(req, groups))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: engines disagree\nreq: %+v\nnaive:   %+v\nindexed: %+v", trial, req, a, b)
		}
	}

	// The whole point of the index: far fewer rules consulted.
	req := baseRequest()
	req.SubjectID = "u0"
	an := naive.Decide(req, nil)
	ax := indexed.Decide(req, nil)
	if ax.PreferencesConsulted >= an.PreferencesConsulted {
		t.Errorf("index consulted %d prefs, naive %d — no reduction", ax.PreferencesConsulted, an.PreferencesConsulted)
	}
}

func TestApplyDecision(t *testing.T) {
	spaces := testModel(t)
	tr := privacy.NewTransformer(spaces, 1, []byte("k"))
	obs := []sensor.Observation{
		{SensorID: "ap-1", Kind: sensor.ObsWiFiConnect, SpaceID: "dbh/2/r1", Value: 1, Time: time.Now()},
		{SensorID: "ap-2", Kind: sensor.ObsWiFiConnect, SpaceID: "dbh/1/r0", Value: 2, Time: time.Now()},
	}
	denied := Decision{Allowed: false}
	if got, err := ApplyDecision(denied, obs, tr); err != nil || got != nil {
		t.Errorf("denied: %v, %v", got, err)
	}
	allowed := Decision{Allowed: true, Effective: policy.Rule{Action: policy.ActionAllow}, Granularity: policy.GranExact}
	got, err := ApplyDecision(allowed, obs, tr)
	if err != nil || len(got) != 2 || got[0].SpaceID != "dbh/2/r1" {
		t.Errorf("allowed: %+v, %v", got, err)
	}
	coarse := Decision{Allowed: true, Effective: policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranFloor}, Granularity: policy.GranFloor}
	got, err = ApplyDecision(coarse, obs, tr)
	if err != nil || len(got) != 2 || got[0].SpaceID != "dbh/2" || got[1].SpaceID != "dbh/1" {
		t.Errorf("coarse: %+v, %v", got, err)
	}
	noisy := Decision{Allowed: true, Effective: policy.Rule{Action: policy.ActionLimit, NoiseEpsilon: 0.5}, Granularity: policy.GranExact}
	got, err = ApplyDecision(noisy, obs, tr)
	if err != nil || len(got) != 2 {
		t.Fatalf("noisy: %v", err)
	}
	if got[0].Value == 1 && got[1].Value == 2 {
		t.Error("noise not applied")
	}
	if _, err := ApplyDecision(allowed, obs, nil); err == nil {
		t.Error("nil transformer accepted")
	}
}

func TestZeroGranularityRequestDefaultsToExact(t *testing.T) {
	for name, eng := range bothEngines(t, Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}) {
		req := baseRequest()
		req.Granularity = 0
		d := eng.Decide(req, nil)
		if !d.Allowed || d.Granularity != policy.GranExact {
			t.Errorf("%s: zero granularity = %+v", name, d)
		}
	}
}
