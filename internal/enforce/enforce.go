// Package enforce implements query-time enforcement: deciding, for
// each data request a service submits, what the requester may see
// about each subject, given the building's policies and the subjects'
// preferences.
//
// The paper's §V.C observes that "with large number of users,
// services, policies, and preferences the cost of enforcement can be
// large enough to be prohibitive in any real setting" and that the
// authors are "working on techniques for optimizing enforcement so
// that the overhead of privacy compliance is minimized." This package
// provides both ends of that experiment:
//
//   - Naive: scans every installed preference and policy per request.
//   - Indexed: posting lists keyed by subject, observation kind, and
//     service collapse the scan to the handful of rules that can
//     match (experiment E2's ablation).
//
// Both engines implement Engine and must produce identical decisions;
// the test suite property-checks that equivalence.
package enforce

import (
	"fmt"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
)

// Request is one data request arriving at the request manager
// (Figure 1 step 9): a service asks for observations of some kind
// about a subject, for a declared purpose, at a requested precision.
type Request struct {
	ServiceID string
	Purpose   policy.Purpose
	Kind      sensor.ObservationKind
	// SubjectID is whose data is requested; multi-subject queries are
	// decided subject by subject.
	SubjectID string
	// SpaceID optionally scopes the query spatially.
	SpaceID string
	// Granularity is the precision the service asks for; zero means
	// exact.
	Granularity policy.Granularity
	// Time is the evaluation instant for time-windowed rules; zero
	// means time.Now().
	Time time.Time
	// From and To bound the observation window fetched by the data
	// path. They do not affect the decision itself.
	From, To time.Time
	// AfterSeq and Limit page the data path: only observations with
	// store sequence > AfterSeq are fetched, at most Limit of them
	// (0 = no cap). Like From/To they do not affect the decision; a
	// pageable response repeats the same decision per page.
	AfterSeq uint64
	Limit    int
}

// Notification informs a user (through their IoTA) that a
// safety-critical building policy overrode one of their preferences,
// per the paper's resolution of Policy 2 vs Preference 2.
type Notification struct {
	UserID       string
	PolicyID     string
	PreferenceID string
	Message      string
}

// Decision is the outcome of deciding one (request, subject) pair.
type Decision struct {
	// Allowed reports whether any data may flow.
	Allowed bool
	// Effective is the rule the data path must apply (granularity
	// clamp, noise, aggregation floor). Meaningful only when Allowed.
	Effective policy.Rule
	// Granularity is the final release precision: the minimum of the
	// requested precision, the service's declared need, and every
	// matching preference's cap.
	Granularity policy.Granularity
	// MatchedPreferences lists the preference IDs that matched.
	MatchedPreferences []string
	// MatchedDefaults lists the group defaults that decided the flow
	// (only set when no personal preference matched).
	MatchedDefaults []string
	// Overridden lists preference IDs a safety-critical policy
	// overrode.
	Overridden []string
	// OverridePolicyID names the safety-critical policy that forced
	// release, when one did. Decision traces surface it as the
	// matched policy.
	OverridePolicyID string
	// FromCache reports that this decision was replayed from a memo
	// (set by Cached); the per-request trace exposes it.
	FromCache bool
	// Notifications carries the user notifications this decision
	// generated.
	Notifications []Notification
	// DenyReason explains a denial.
	DenyReason string
	// PoliciesConsulted and PreferencesConsulted count rule
	// evaluations, the cost metric for experiments E1/E2.
	PoliciesConsulted    int
	PreferencesConsulted int
}

// Engine decides requests against installed policies and preferences.
// Implementations are safe for concurrent Decide calls; installation
// calls must not race with Decide.
type Engine interface {
	// AddPolicy installs a building policy.
	AddPolicy(p policy.BuildingPolicy) error
	// AddPreference installs a user preference.
	AddPreference(p policy.Preference) error
	// RemovePreference uninstalls by ID, reporting whether it existed.
	RemovePreference(id string) bool
	// Decide evaluates one (request, subject) pair. subjectGroups are
	// the subject's profile groups (for group-scoped rules).
	Decide(req Request, subjectGroups []profile.Group) Decision
	// Counts returns installed (policies, preferences).
	Counts() (int, int)
}

// Config carries the collaborators both engines share.
type Config struct {
	// Spaces resolves spatial containment; nil restricts spatial
	// matching to exact IDs.
	Spaces *spatial.Model
	// Services enforces purpose binding; nil disables the check
	// (requests from unregistered services are then allowed through
	// to preference evaluation).
	Services *service.Registry
	// DefaultAllow is the decision when no preference matches. The
	// paper's buildings advertise policies and let users opt out, so
	// the default is allow; privacy-by-default deployments set false.
	DefaultAllow bool
	// GroupDefaults are building-configured per-group default rules,
	// consulted only when the subject has no matching personal
	// preference (see GroupDefault). Fixed at engine construction.
	GroupDefaults []GroupDefault
}

// evaluator holds the shared decision logic; engines differ only in
// candidate selection.
type evaluator struct {
	cfg Config
}

// decide runs the shared decision pipeline over the candidate rules
// the engine selected. candPolicies/candPrefs are the rules the
// engine considers possibly-matching; consulted counts reflect their
// sizes.
func (e *evaluator) decide(req Request, subjectGroups []profile.Group, candPolicies []policy.BuildingPolicy, candPrefs []policy.Preference) Decision {
	now := req.Time
	if now.IsZero() {
		now = time.Now()
	}
	reqGran := req.Granularity
	if !reqGran.Valid() {
		reqGran = policy.GranExact
	}
	d := Decision{
		PoliciesConsulted:    len(candPolicies),
		PreferencesConsulted: len(candPrefs),
	}

	// Purpose binding: the service must have declared (kind, purpose).
	declaredGran := policy.GranExact
	if e.cfg.Services != nil && req.ServiceID != "" {
		svc, ok := e.cfg.Services.Get(req.ServiceID)
		if !ok {
			d.DenyReason = fmt.Sprintf("unknown service %q", req.ServiceID)
			return d
		}
		g, ok := svc.Permits(req.Kind, req.Purpose)
		if !ok {
			d.DenyReason = fmt.Sprintf("service %q did not declare %s for %s", req.ServiceID, req.Kind, req.Purpose)
			return d
		}
		declaredGran = g
	}

	ctx := policy.Context{
		SubjectID:     req.SubjectID,
		SubjectGroups: subjectGroups,
		SpaceID:       req.SpaceID,
		SensorType:    sensor.TypeForKind(req.Kind),
		ObsKind:       req.Kind,
		Purpose:       req.Purpose,
		ServiceID:     req.ServiceID,
		Time:          now,
	}

	// Gather the subject's matching preferences. Sorting by ID keeps
	// decisions deterministic and identical across engines regardless
	// of candidate order.
	var matched []policy.Preference
	for _, p := range candPrefs {
		if p.UserID != req.SubjectID {
			continue
		}
		if !p.Scope.MatchesRequest(ctx, e.cfg.Spaces) {
			continue
		}
		matched = append(matched, p)
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].ID < matched[j].ID })
	rules := make([]policy.Rule, 0, len(matched))
	for _, p := range matched {
		rules = append(rules, p.Rule)
		d.MatchedPreferences = append(d.MatchedPreferences, p.ID)
	}

	userRule := policy.Rule{Action: policy.ActionAllow}
	switch {
	case len(rules) > 0:
		userRule = reasoner.CombineRules(rules...)
	default:
		// No personal preference: consult the subject's group
		// defaults, then the building-wide default.
		defRules, defIDs := e.matchDefaults(ctx, subjectGroups)
		if len(defRules) > 0 {
			userRule = reasoner.CombineRules(defRules...)
			d.MatchedDefaults = defIDs
		} else if !e.cfg.DefaultAllow {
			d.DenyReason = "no preference permits this flow (default-deny)"
			return d
		}
	}

	// If the user restricts the flow, a matching safety-critical
	// override policy forces release with notification. The lowest
	// policy ID wins ties so decisions are engine-order independent.
	if userRule.Action != policy.ActionAllow {
		var winner *policy.BuildingPolicy
		for i := range candPolicies {
			bp := &candPolicies[i]
			if !bp.Override {
				continue
			}
			if !bp.Scope.MatchesRequest(ctx, e.cfg.Spaces) {
				continue
			}
			if winner == nil || bp.ID < winner.ID {
				winner = bp
			}
		}
		if winner != nil {
			bp := *winner
			// Override applies: release proceeds, users are notified.
			d.OverridePolicyID = bp.ID
			d.Allowed = true
			d.Effective = policy.Rule{Action: policy.ActionAllow}
			d.Granularity = reqGran.Min(declaredGran)
			for _, p := range matched {
				if p.Rule.Action != policy.ActionAllow {
					d.Overridden = append(d.Overridden, p.ID)
					d.Notifications = append(d.Notifications, Notification{
						UserID:       p.UserID,
						PolicyID:     bp.ID,
						PreferenceID: p.ID,
						Message: fmt.Sprintf("Building policy %q (%s) overrode your preference %q for this request.",
							bp.Name, bp.ID, p.Name),
					})
				}
			}
			return d
		}
	}

	switch userRule.Action {
	case policy.ActionDeny:
		d.DenyReason = "denied by user preference"
		return d
	case policy.ActionLimit:
		if userRule.MaxGranularity == policy.GranNone {
			d.DenyReason = "user preference releases no location"
			return d
		}
		d.Allowed = true
		d.Effective = userRule
		g := reqGran.Min(declaredGran)
		if userRule.MaxGranularity.Valid() {
			g = g.Min(userRule.MaxGranularity)
		}
		d.Granularity = g
		return d
	default:
		d.Allowed = true
		d.Effective = policy.Rule{Action: policy.ActionAllow}
		d.Granularity = reqGran.Min(declaredGran)
		return d
	}
}
