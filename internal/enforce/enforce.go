// Package enforce implements query-time enforcement: deciding, for
// each data request a service submits, what the requester may see
// about each subject, given the building's policies and the subjects'
// preferences.
//
// The paper's §V.C observes that "with large number of users,
// services, policies, and preferences the cost of enforcement can be
// large enough to be prohibitive in any real setting" and that the
// authors are "working on techniques for optimizing enforcement so
// that the overhead of privacy compliance is minimized." This package
// provides both ends of that experiment:
//
//   - Naive: scans every installed preference and policy per request
//     (the "unoptimized enforcement" reference arm).
//   - Compiled: compiles every rule at registration time into an
//     indexed decision structure (internal/enforce/compiled) —
//     candidates pre-bucketed by subject, observation kind, service,
//     and purpose, candidate sets intersected as bitsets over a dense
//     rule-ID space, scope conditions flattened into small instruction
//     programs — plus a built-in epoch-invalidated decision memo.
//     Decision cost stays flat from 10 to 1,000,000 registered
//     preferences (BenchmarkCompiledDecide gates this in CI).
//
// Both engines implement Engine and must produce identical decisions;
// TestCompiledMatchesNaive and FuzzCompilePolicy property-check that
// equivalence. They share the decision pipeline below (prepare +
// finish) by construction and differ only in candidate selection.
package enforce

import (
	"fmt"
	"sort"
	"time"

	"github.com/tippers/tippers/internal/enforce/compiled"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/reasoner"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
	"github.com/tippers/tippers/internal/spatial"
)

// Request is one data request arriving at the request manager
// (Figure 1 step 9): a service asks for observations of some kind
// about a subject, for a declared purpose, at a requested precision.
type Request struct {
	ServiceID string
	Purpose   policy.Purpose
	Kind      sensor.ObservationKind
	// SubjectID is whose data is requested; multi-subject queries are
	// decided subject by subject.
	SubjectID string
	// SpaceID optionally scopes the query spatially.
	SpaceID string
	// Granularity is the precision the service asks for; zero means
	// exact.
	Granularity policy.Granularity
	// Time is the evaluation instant for time-windowed rules; zero
	// means time.Now().
	Time time.Time
	// From and To bound the observation window fetched by the data
	// path. They do not affect the decision itself.
	From, To time.Time
	// AfterSeq and Limit page the data path: only observations with
	// store sequence > AfterSeq are fetched, at most Limit of them
	// (0 = no cap). Like From/To they do not affect the decision; a
	// pageable response repeats the same decision per page.
	AfterSeq uint64
	Limit    int
}

// Notification informs a user (through their IoTA) that a
// safety-critical building policy overrode one of their preferences,
// per the paper's resolution of Policy 2 vs Preference 2.
type Notification struct {
	UserID       string
	PolicyID     string
	PreferenceID string
	Message      string
}

// Decision is the outcome of deciding one (request, subject) pair.
type Decision struct {
	// Allowed reports whether any data may flow.
	Allowed bool
	// Effective is the rule the data path must apply (granularity
	// clamp, noise, aggregation floor). Meaningful only when Allowed.
	Effective policy.Rule
	// Granularity is the final release precision: the minimum of the
	// requested precision, the service's declared need, and every
	// matching preference's cap.
	Granularity policy.Granularity
	// MatchedPreferences lists the preference IDs that matched.
	MatchedPreferences []string
	// MatchedDefaults lists the group defaults that decided the flow
	// (only set when no personal preference matched).
	MatchedDefaults []string
	// Overridden lists preference IDs a safety-critical policy
	// overrode.
	Overridden []string
	// OverridePolicyID names the safety-critical policy that forced
	// release, when one did. Decision traces surface it as the
	// matched policy.
	OverridePolicyID string
	// FromCache reports that this decision was replayed from the
	// engine's decision memo; the per-request trace exposes it.
	FromCache bool
	// Notifications carries the user notifications this decision
	// generated.
	Notifications []Notification
	// DenyReason explains a denial.
	DenyReason string
	// PoliciesConsulted and PreferencesConsulted count rule
	// evaluations, the cost metric for experiments E1/E2.
	PoliciesConsulted    int
	PreferencesConsulted int
}

// Engine decides requests against installed policies and preferences.
// Implementations are safe for full concurrent use: Decide calls may
// race with installation and removal, and a mutation that has
// returned is visible to every subsequent Decide
// (TestEngineRecompileUnderChurn in internal/core races all of this
// under the race detector).
type Engine interface {
	// AddPolicy installs a building policy.
	AddPolicy(p policy.BuildingPolicy) error
	// AddPreference installs a user preference.
	AddPreference(p policy.Preference) error
	// RemovePreference uninstalls by ID, reporting whether it existed.
	RemovePreference(id string) bool
	// Decide evaluates one (request, subject) pair. subjectGroups are
	// the subject's profile groups (for group-scoped rules).
	Decide(req Request, subjectGroups []profile.Group) Decision
	// Counts returns installed (policies, preferences).
	Counts() (int, int)
}

// Config carries the collaborators both engines share.
type Config struct {
	// Spaces resolves spatial containment; nil restricts spatial
	// matching to exact IDs.
	Spaces *spatial.Model
	// Services enforces purpose binding; nil disables the check
	// (requests from unregistered services are then allowed through
	// to preference evaluation).
	Services *service.Registry
	// DefaultAllow is the decision when no preference matches. The
	// paper's buildings advertise policies and let users opt out, so
	// the default is allow; privacy-by-default deployments set false.
	DefaultAllow bool
	// GroupDefaults are building-configured per-group default rules,
	// consulted only when the subject has no matching personal
	// preference (see GroupDefault). Fixed at engine construction.
	GroupDefaults []GroupDefault
}

// evaluator holds the shared decision logic; engines differ only in
// candidate selection.
type evaluator struct {
	cfg Config
}

// prepared carries the per-request state the decision pipeline
// derives before candidate matching: the match context plus the
// granularity bounds purpose binding established. Engines share it so
// their decisions agree by construction.
type prepared struct {
	ctx          policy.Context
	reqGran      policy.Granularity
	declaredGran policy.Granularity
}

// prepare runs purpose binding and builds the match context. A false
// result means the request is denied outright; d carries the reason
// (its consulted counts, set by the caller, survive either way).
func (e *evaluator) prepare(req Request, subjectGroups []profile.Group, d *Decision) (prepared, bool) {
	now := req.Time
	if now.IsZero() {
		now = time.Now()
	}
	p := prepared{reqGran: req.Granularity, declaredGran: policy.GranExact}
	if !p.reqGran.Valid() {
		p.reqGran = policy.GranExact
	}

	// Purpose binding: the service must have declared (kind, purpose).
	if e.cfg.Services != nil && req.ServiceID != "" {
		svc, ok := e.cfg.Services.Get(req.ServiceID)
		if !ok {
			d.DenyReason = fmt.Sprintf("unknown service %q", req.ServiceID)
			return p, false
		}
		g, ok := svc.Permits(req.Kind, req.Purpose)
		if !ok {
			d.DenyReason = fmt.Sprintf("service %q did not declare %s for %s", req.ServiceID, req.Kind, req.Purpose)
			return p, false
		}
		p.declaredGran = g
	}

	p.ctx = policy.Context{
		SubjectID:     req.SubjectID,
		SubjectGroups: subjectGroups,
		SpaceID:       req.SpaceID,
		SensorType:    sensor.TypeForKind(req.Kind),
		ObsKind:       req.Kind,
		Purpose:       req.Purpose,
		ServiceID:     req.ServiceID,
		Time:          now,
	}
	return p, true
}

// finish runs the combination pipeline every engine shares over the
// subject's matched preferences, which must be sorted by ID so
// decisions are deterministic regardless of candidate order. override
// is consulted lazily — only when the combined user rule restricts
// the flow — and must return the lowest-ID matching override policy,
// or nil.
func (e *evaluator) finish(p prepared, d Decision, matched []compiled.Matched, override func() *policy.BuildingPolicy) Decision {
	userRule := policy.Rule{Action: policy.ActionAllow}
	switch {
	case len(matched) > 0:
		// Stack-sized rule buffer: CombineRules does not retain its
		// argument, so the common few-preference case allocates only
		// the caller-visible MatchedPreferences slice.
		var rulesBuf [8]policy.Rule
		rules := rulesBuf[:0]
		d.MatchedPreferences = make([]string, 0, len(matched))
		for _, pref := range matched {
			rules = append(rules, pref.Rule)
			d.MatchedPreferences = append(d.MatchedPreferences, pref.ID)
		}
		userRule = reasoner.CombineRules(rules...)
	default:
		// No personal preference: consult the subject's group
		// defaults, then the building-wide default.
		defRules, defIDs := e.matchDefaults(p.ctx, p.ctx.SubjectGroups)
		if len(defRules) > 0 {
			userRule = reasoner.CombineRules(defRules...)
			d.MatchedDefaults = defIDs
		} else if !e.cfg.DefaultAllow {
			d.DenyReason = "no preference permits this flow (default-deny)"
			return d
		}
	}

	// If the user restricts the flow, a matching safety-critical
	// override policy forces release with notification.
	if userRule.Action != policy.ActionAllow {
		if winner := override(); winner != nil {
			bp := *winner
			// Override applies: release proceeds, users are notified.
			d.OverridePolicyID = bp.ID
			d.Allowed = true
			d.Effective = policy.Rule{Action: policy.ActionAllow}
			d.Granularity = p.reqGran.Min(p.declaredGran)
			for _, pref := range matched {
				if pref.Rule.Action != policy.ActionAllow {
					d.Overridden = append(d.Overridden, pref.ID)
					d.Notifications = append(d.Notifications, Notification{
						UserID:       pref.UserID,
						PolicyID:     bp.ID,
						PreferenceID: pref.ID,
						Message: fmt.Sprintf("Building policy %q (%s) overrode your preference %q for this request.",
							bp.Name, bp.ID, pref.Name),
					})
				}
			}
			return d
		}
	}

	switch userRule.Action {
	case policy.ActionDeny:
		d.DenyReason = "denied by user preference"
		return d
	case policy.ActionLimit:
		if userRule.MaxGranularity == policy.GranNone {
			d.DenyReason = "user preference releases no location"
			return d
		}
		d.Allowed = true
		d.Effective = userRule
		g := p.reqGran.Min(p.declaredGran)
		if userRule.MaxGranularity.Valid() {
			g = g.Min(userRule.MaxGranularity)
		}
		d.Granularity = g
		return d
	default:
		d.Allowed = true
		d.Effective = policy.Rule{Action: policy.ActionAllow}
		d.Granularity = p.reqGran.Min(p.declaredGran)
		return d
	}
}

// decide runs the shared decision pipeline over the candidate rules
// the engine selected by scanning them. candPolicies/candPrefs are
// the rules the engine considers possibly-matching; consulted counts
// reflect their sizes.
func (e *evaluator) decide(req Request, subjectGroups []profile.Group, candPolicies []policy.BuildingPolicy, candPrefs []policy.Preference) Decision {
	d := Decision{
		PoliciesConsulted:    len(candPolicies),
		PreferencesConsulted: len(candPrefs),
	}
	p, ok := e.prepare(req, subjectGroups, &d)
	if !ok {
		return d
	}

	var matched []compiled.Matched
	for _, pref := range candPrefs {
		if pref.UserID != req.SubjectID {
			continue
		}
		if !pref.Scope.MatchesRequest(p.ctx, e.cfg.Spaces) {
			continue
		}
		matched = append(matched, compiled.Matched{ID: pref.ID, UserID: pref.UserID, Name: pref.Name, Rule: pref.Rule})
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].ID < matched[j].ID })

	return e.finish(p, d, matched, func() *policy.BuildingPolicy {
		// The lowest policy ID wins ties so decisions are
		// engine-order independent.
		var winner *policy.BuildingPolicy
		for i := range candPolicies {
			bp := &candPolicies[i]
			if !bp.Override {
				continue
			}
			if !bp.Scope.MatchesRequest(p.ctx, e.cfg.Spaces) {
				continue
			}
			if winner == nil || bp.ID < winner.ID {
				winner = bp
			}
		}
		return winner
	})
}
