package enforce

import (
	"fmt"
	"sync"
	"time"

	"github.com/tippers/tippers/internal/enforce/compiled"
	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/telemetry"
)

// Compiled is the production engine (§V.C): policy and preference
// documents are compiled at registration time into an indexed
// decision structure (internal/enforce/compiled) — candidate rules
// pre-bucketed by subject, observation kind, service, and purpose,
// candidate sets intersected as bitsets over a dense rule-ID space,
// scope conditions flattened into instruction programs with spatial
// containment precomputed. Decide touches only the handful of rules
// that can match, so decision cost stays flat from 10 to 1,000,000
// registered preferences; BenchmarkCompiledDecide gates that flatness
// in CI.
//
// A built-in decision memo subsumes the old Cached wrapper. Real
// request streams are heavily repetitive (the same service polls the
// same subjects), so even compiled matching re-evaluates identical
// tuples; the memo collapses those to a map hit. Its correctness
// constraints are load-bearing:
//
//   - Time-windowed rules make decisions time-dependent, so the memo
//     key quantizes the request time to the minute (windows have
//     minute resolution). Two requests in the same minute are
//     guaranteed identical decisions; across minutes they
//     re-evaluate.
//   - Decisions that generated notifications are never memoized:
//     replaying them would either duplicate user notifications or
//     silently swallow them. Override paths always re-decide.
//
// Every mutation recompiles incrementally (only the touched rule) and
// bumps the epoch, dropping the memo in the same critical section —
// no window exists where a decision compiled against old rules can be
// served after the mutation returns. Core's stream-hub OnInvalidate
// fan-out additionally calls Invalidate so the engine memo, the hub's
// shared stream memo, the columnar tier's rollup answers, and the
// occupancy cache all flush on one path.
type Compiled struct {
	eval evaluator

	mu    sync.RWMutex
	ix    *compiled.Index
	epoch uint64
	memo  map[cacheKey]Decision // nil when the memo is disabled

	// maxEntries bounds memo memory; at the cap the memo is reset
	// (simple and effective for cyclic workloads). 0 means disabled.
	maxEntries int
	hits       *telemetry.Counter
	miss       *telemetry.Counter
}

type cacheKey struct {
	epoch       uint64
	subject     string
	service     string
	purpose     policy.Purpose
	kind        string
	space       string
	granularity policy.Granularity
	minute      int64
	groupsKey   string
}

var _ Engine = (*Compiled)(nil)

// NewCompiled returns a compiled engine with the default decision
// memo (65536 entries).
func NewCompiled(cfg Config) *Compiled { return NewCompiledMemo(cfg, 0) }

// NewCompiledMemo returns a compiled engine with a decision memo of
// at most maxEntries: 0 selects the 65536 default, negative disables
// the memo entirely so every Decide re-runs candidate selection and
// program evaluation (the flatness benchmark and the naive-
// equivalence properties measure this raw path).
func NewCompiledMemo(cfg Config, maxEntries int) *Compiled {
	c := &Compiled{
		eval: evaluator{cfg: cfg},
		ix:   compiled.NewIndex(cfg.Spaces),
		hits: telemetry.NewCounter(),
		miss: telemetry.NewCounter(),
	}
	if maxEntries == 0 {
		maxEntries = 65536
	}
	if maxEntries > 0 {
		c.maxEntries = maxEntries
		c.memo = make(map[cacheKey]Decision)
	}
	return c
}

// NewIndexed returns the compiled engine without a decision memo.
// The posting-list engine this package grew up with was called
// Indexed; the constructor keeps the name so the E2 ablation arms
// (and older call sites) still read naturally — "indexed" now means
// "compiled matching, no memo".
func NewIndexed(cfg Config) *Compiled { return NewCompiledMemo(cfg, -1) }

// New constructs an engine by flavor name, the -enforce-engine escape
// hatch: "compiled" (or "") is the default memoized compiled engine,
// "compiled-nomemo" disables its memo, and "naive" is the scan-
// everything reference engine. The historical flavor names "indexed"
// and "cached" map to "compiled-nomemo" and "compiled".
func New(flavor string, cfg Config) (Engine, error) {
	switch flavor {
	case "", "compiled", "cached":
		return NewCompiled(cfg), nil
	case "compiled-nomemo", "indexed":
		return NewIndexed(cfg), nil
	case "naive":
		return NewNaive(cfg), nil
	default:
		return nil, fmt.Errorf("enforce: unknown engine flavor %q (want compiled, compiled-nomemo, or naive)", flavor)
	}
}

// AddPolicy implements Engine, compiling the policy and invalidating
// the memo atomically.
func (c *Compiled) AddPolicy(p policy.BuildingPolicy) error {
	if err := p.Check(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ix.AddPolicy(p)
	c.invalidateLocked()
	return nil
}

// AddPreference implements Engine, compiling the preference and
// invalidating the memo atomically.
func (c *Compiled) AddPreference(p policy.Preference) error {
	if err := p.Check(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ix.AddPreference(p)
	c.invalidateLocked()
	return nil
}

// RemovePreference implements Engine.
func (c *Compiled) RemovePreference(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ix.RemovePreference(id) {
		return false
	}
	c.invalidateLocked()
	return true
}

// Counts implements Engine.
func (c *Compiled) Counts() (int, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.Counts()
}

// Invalidate drops every memoized decision. Mutations through the
// engine already invalidate atomically; this is the hook core's
// stream-hub OnInvalidate fan-out calls so every decision-derived
// cache in the system flushes on one path.
func (c *Compiled) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateLocked()
}

func (c *Compiled) invalidateLocked() {
	c.epoch++
	if c.memo != nil && len(c.memo) > 0 {
		c.memo = make(map[cacheKey]Decision)
	}
}

// Stats returns memo (hits, misses) since construction.
func (c *Compiled) Stats() (hits, misses uint64) {
	return c.hits.Value(), c.miss.Value()
}

// RegisterMetrics exposes the memo's hit/miss counters and the
// compiled state's sizes on a telemetry registry. The cache metric
// names predate the compiled engine (the Cached wrapper exported
// them) and are kept stable for dashboards.
func (c *Compiled) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("tippers_enforce_cache_hits_total",
		"Decision-memo hits.", func() float64 { return float64(c.hits.Value()) })
	r.CounterFunc("tippers_enforce_cache_misses_total",
		"Decision-memo misses (compiled matcher consulted).", func() float64 { return float64(c.miss.Value()) })
	r.GaugeFunc("tippers_enforce_cache_entries",
		"Memoized decisions currently held.", func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(len(c.memo))
		})
	r.GaugeFunc("tippers_enforce_cache_hit_ratio",
		"Fraction of decisions served from the memo.", func() float64 {
			h, m := c.hits.Value(), c.miss.Value()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	r.GaugeFunc("tippers_enforce_compiled_preference_programs",
		"Preference rules currently compiled into the decision index.", func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(c.ix.Stats().PreferencePrograms)
		})
	r.GaugeFunc("tippers_enforce_compiled_override_programs",
		"Override policies currently compiled into the decision index.", func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(c.ix.Stats().OverridePrograms)
		})
}

// Decide implements Engine: memo lookup, then candidate selection by
// bitset intersection and program evaluation, sharing the decision
// pipeline (prepare/finish) with Naive.
func (c *Compiled) Decide(req Request, subjectGroups []profile.Group) Decision {
	// maxEntries is immutable after construction, so it is the
	// race-free memo-enabled discriminator (the memo map itself is
	// replaced under the write lock).
	if c.maxEntries == 0 {
		c.mu.RLock()
		d := c.decideLocked(req, subjectGroups)
		c.mu.RUnlock()
		return d
	}

	t := req.Time
	if t.IsZero() {
		// An unset time means "now"; quantize the actual wall clock so
		// entries age out of validity with it.
		t = time.Now()
	}
	var groupsKey string
	for _, g := range subjectGroups {
		groupsKey += string(g) + "|"
	}
	c.mu.RLock()
	key := cacheKey{
		epoch:       c.epoch,
		subject:     req.SubjectID,
		service:     req.ServiceID,
		purpose:     req.Purpose,
		kind:        string(req.Kind),
		space:       req.SpaceID,
		granularity: req.Granularity,
		minute:      t.Unix() / 60,
		groupsKey:   groupsKey,
	}
	if d, ok := c.memo[key]; ok {
		c.mu.RUnlock()
		c.hits.Inc()
		d.FromCache = true
		return d
	}
	d := c.decideLocked(req, subjectGroups)
	c.mu.RUnlock()

	c.miss.Inc()
	// Only notification-free decisions are safe to replay.
	if len(d.Notifications) == 0 {
		c.mu.Lock()
		if key.epoch == c.epoch {
			if len(c.memo) >= c.maxEntries {
				c.memo = make(map[cacheKey]Decision)
			}
			c.memo[key] = d
		}
		c.mu.Unlock()
	}
	return d
}

// matchScratch recycles the matched-preference buffer across decides.
// Decides run concurrently under the read lock, so the scratch is
// pooled rather than hung off the engine. The finish pipeline copies
// what it needs out of the matched slice and never retains it.
var matchScratch = sync.Pool{
	New: func() any { return &matchBuf{prefs: make([]compiled.Matched, 0, 8)} },
}

type matchBuf struct{ prefs []compiled.Matched }

// decideLocked runs the compiled decision under the read lock.
func (c *Compiled) decideLocked(req Request, subjectGroups []profile.Group) Decision {
	cands := c.ix.PrefCandidates(req.SubjectID, req.Kind, req.ServiceID, make([]uint32, 0, 16))
	ovCands := c.ix.OverrideCandidates(req.Kind, req.Purpose, nil)
	d := Decision{
		PoliciesConsulted:    len(ovCands),
		PreferencesConsulted: len(cands),
	}
	p, ok := c.eval.prepare(req, subjectGroups, &d)
	if !ok {
		return d
	}
	buf := matchScratch.Get().(*matchBuf)
	matched := c.ix.MatchPrefs(cands, &p.ctx, buf.prefs[:0])
	d = c.eval.finish(p, d, matched, func() *policy.BuildingPolicy {
		return c.ix.MatchOverride(ovCands, &p.ctx)
	})
	buf.prefs = matched[:0]
	matchScratch.Put(buf)
	return d
}

// String identifies the engine in experiment output.
func (c *Compiled) String() string {
	if c.maxEntries == 0 {
		return "compiled-nomemo"
	}
	return "compiled"
}
