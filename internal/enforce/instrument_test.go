package enforce

import (
	"fmt"
	"testing"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/telemetry"
)

func TestEngineName(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	naive := NewNaive(cfg)
	nomemo := NewIndexed(cfg)
	compiled := NewCompiled(cfg)
	reg := telemetry.NewRegistry()
	instr := Instrument(compiled, reg)

	cases := map[Engine]string{
		naive:    "naive",
		nomemo:   "compiled-nomemo",
		compiled: "compiled",
		instr:    "compiled", // unwraps to the real flavor
	}
	for e, want := range cases {
		if got := EngineName(e); got != want {
			t.Errorf("EngineName(%T) = %q, want %q", e, got, want)
		}
	}
}

func TestInstrumentedCountsOutcomes(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	inner := NewIndexed(cfg)
	if err := inner.AddPreference(policy.Preference{
		ID: "pref-deny", UserID: "mary",
		Scope: policy.Scope{ServiceID: "concierge"},
		Rule:  policy.Rule{Action: policy.ActionDeny},
	}); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e := Instrument(inner, reg)

	denied := e.Decide(baseRequest(), nil)
	if denied.Allowed {
		t.Fatal("expected denial")
	}
	other := baseRequest()
	other.SubjectID = "bob"
	if d := e.Decide(other, nil); !d.Allowed {
		t.Fatalf("expected allow, got %+v", d)
	}

	var decisions, denials float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "tippers_enforce_decisions_total":
			decisions = s.Value
		case "tippers_enforce_denials_total":
			denials = s.Value
		}
	}
	if decisions != 2 || denials != 1 {
		t.Errorf("decisions=%v denials=%v, want 2/1", decisions, denials)
	}
}

// benchEngine builds an indexed engine with a realistic rule
// population: pop subjects, each with a couple of preferences, plus a
// handful of building policies — the E2 hot-path shape.
func benchEngine(b *testing.B, pop int) Engine {
	b.Helper()
	cfg := Config{Spaces: testModel(b), Services: testServices(b), DefaultAllow: true}
	e := NewIndexed(cfg)
	for i := 0; i < pop; i++ {
		user := fmt.Sprintf("u%04d", i)
		if err := e.AddPreference(policy.Preference{
			ID: "pref-coarse-" + user, UserID: user,
			Scope: policy.Scope{ServiceID: "concierge"},
			Rule:  policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranBuilding},
		}); err != nil {
			b.Fatal(err)
		}
		if i%3 == 0 {
			if err := e.AddPreference(policy.Preference{
				ID: "pref-deny-analytics-" + user, UserID: user,
				Scope: policy.Scope{Purposes: []policy.Purpose{policy.PurposeAnalytics}},
				Rule:  policy.Rule{Action: policy.ActionDeny},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.AddPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkTelemetryOverhead compares the bare indexed engine against
// the same engine behind the Instrumented wrapper (histogram +
// counters per decision). The wrapper must stay cheap — single-digit
// percent on the E2 hot path — for always-on instrumentation to be
// defensible.
func BenchmarkTelemetryOverhead(b *testing.B) {
	const pop = 200
	req := baseRequest()

	b.Run("bare", func(b *testing.B) {
		e := benchEngine(b, pop)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := req
			r.SubjectID = fmt.Sprintf("u%04d", i%pop)
			_ = e.Decide(r, nil)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		e := Instrument(benchEngine(b, pop), telemetry.NewRegistry())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := req
			r.SubjectID = fmt.Sprintf("u%04d", i%pop)
			_ = e.Decide(r, nil)
		}
	})
}
