package enforce

import (
	"sync"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// Indexed is the optimized engine (§V.C): preferences live in posting
// lists keyed by (subject, observation kind) with a wildcard-kind
// bucket per subject, and override policies in lists keyed by kind.
// A Decide touches only the subject's own rules for the requested
// kind, so cost is independent of the building's total preference
// count — the property experiment E2 measures against Naive.
type Indexed struct {
	eval evaluator

	mu sync.RWMutex
	// overridesByKind holds only Override policies (the only ones
	// decide consults), keyed by scope kind with "" as wildcard.
	overridesByKind map[sensor.ObservationKind][]policy.BuildingPolicy
	policyCount     int

	// prefsBySubject[user][kind] holds the user's preferences whose
	// scope names that kind; kind "" is the wildcard bucket.
	prefsBySubject map[string]map[sensor.ObservationKind][]policy.Preference
	prefByID       map[string]policy.Preference
}

var _ Engine = (*Indexed)(nil)

// NewIndexed returns an empty indexed engine.
func NewIndexed(cfg Config) *Indexed {
	return &Indexed{
		eval:            evaluator{cfg: cfg},
		overridesByKind: make(map[sensor.ObservationKind][]policy.BuildingPolicy),
		prefsBySubject:  make(map[string]map[sensor.ObservationKind][]policy.Preference),
		prefByID:        make(map[string]policy.Preference),
	}
}

// AddPolicy implements Engine.
func (x *Indexed) AddPolicy(p policy.BuildingPolicy) error {
	if err := p.Check(); err != nil {
		return err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.policyCount++
	if !p.Override {
		// Non-override policies never influence Decide; they are
		// enforced at capture/storage time by the BMS core.
		return nil
	}
	x.overridesByKind[p.Scope.ObsKind] = append(x.overridesByKind[p.Scope.ObsKind], p)
	return nil
}

// AddPreference implements Engine.
func (x *Indexed) AddPreference(p policy.Preference) error {
	if err := p.Check(); err != nil {
		return err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if old, ok := x.prefByID[p.ID]; ok {
		x.removeLocked(old)
	}
	x.prefByID[p.ID] = p
	byKind := x.prefsBySubject[p.UserID]
	if byKind == nil {
		byKind = make(map[sensor.ObservationKind][]policy.Preference)
		x.prefsBySubject[p.UserID] = byKind
	}
	byKind[p.Scope.ObsKind] = append(byKind[p.Scope.ObsKind], p)
	return nil
}

// RemovePreference implements Engine.
func (x *Indexed) RemovePreference(id string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	old, ok := x.prefByID[id]
	if !ok {
		return false
	}
	x.removeLocked(old)
	return true
}

func (x *Indexed) removeLocked(p policy.Preference) {
	delete(x.prefByID, p.ID)
	byKind := x.prefsBySubject[p.UserID]
	if byKind == nil {
		return
	}
	list := byKind[p.Scope.ObsKind]
	for i := range list {
		if list[i].ID == p.ID {
			list[i] = list[len(list)-1]
			byKind[p.Scope.ObsKind] = list[:len(list)-1]
			break
		}
	}
	if len(byKind[p.Scope.ObsKind]) == 0 {
		delete(byKind, p.Scope.ObsKind)
	}
	if len(byKind) == 0 {
		delete(x.prefsBySubject, p.UserID)
	}
}

// Decide implements Engine using the posting lists.
func (x *Indexed) Decide(req Request, subjectGroups []profile.Group) Decision {
	x.mu.RLock()
	defer x.mu.RUnlock()

	// A kind-scoped rule can never match a kindless request (the
	// scope's ObsKind test fails), so kindless requests consult only
	// the wildcard buckets.
	var candPrefs []policy.Preference
	if byKind := x.prefsBySubject[req.SubjectID]; byKind != nil {
		if req.Kind == "" {
			candPrefs = byKind[""]
		} else {
			exact := byKind[req.Kind]
			wild := byKind[""]
			candPrefs = make([]policy.Preference, 0, len(exact)+len(wild))
			candPrefs = append(candPrefs, exact...)
			candPrefs = append(candPrefs, wild...)
		}
	}

	candPolicies := x.overridesByKind[req.Kind]
	if req.Kind != "" {
		if wild := x.overridesByKind[""]; len(wild) > 0 {
			merged := make([]policy.BuildingPolicy, 0, len(candPolicies)+len(wild))
			merged = append(merged, candPolicies...)
			merged = append(merged, wild...)
			candPolicies = merged
		}
	}

	return x.eval.decide(req, subjectGroups, candPolicies, candPrefs)
}

// Counts implements Engine.
func (x *Indexed) Counts() (int, int) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.policyCount, len(x.prefByID)
}
