package enforce

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
)

func newCachedPair(t testing.TB) (*Cached, *Indexed) {
	t.Helper()
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	inner := NewIndexed(cfg)
	return NewCached(inner, 0), inner
}

func TestCachedHitsOnRepeats(t *testing.T) {
	c, _ := newCachedPair(t)
	req := baseRequest()
	first := c.Decide(req, nil)
	second := c.Decide(req, nil)
	if !reflect.DeepEqual(normalizeDecision(first), normalizeDecision(second)) {
		t.Error("cached decision differs")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1/1", hits, misses)
	}
}

func TestCachedMinuteQuantization(t *testing.T) {
	c, _ := newCachedPair(t)
	// A business-hours-scoped preference makes decisions time-dependent.
	if err := c.AddPreference(policy.Preference{
		ID: "biz-only", UserID: "mary",
		Scope: policy.Scope{ObsKind: sensor.ObsWiFiConnect, Window: policy.BusinessHours},
		Rule:  policy.Rule{Action: policy.ActionDeny},
	}); err != nil {
		t.Fatal(err)
	}
	req := baseRequest() // Wednesday 2pm: inside business hours
	if d := c.Decide(req, nil); d.Allowed {
		t.Fatal("business-hours deny missed")
	}
	// Same minute: cache hit, same outcome.
	if d := c.Decide(req, nil); d.Allowed {
		t.Fatal("cached decision flipped")
	}
	// Evening: different minute bucket, re-evaluated, now allowed.
	req.Time = time.Date(2017, time.June, 7, 20, 0, 0, 0, time.UTC)
	if d := c.Decide(req, nil); !d.Allowed {
		t.Fatal("evening request used stale business-hours decision")
	}
}

func TestCachedInvalidationOnRuleChange(t *testing.T) {
	c, _ := newCachedPair(t)
	req := baseRequest()
	if d := c.Decide(req, nil); !d.Allowed {
		t.Fatal("baseline should allow")
	}
	pref := policy.CoarseLocationPreference("mary", "concierge")
	if err := c.AddPreference(pref); err != nil {
		t.Fatal(err)
	}
	if d := c.Decide(req, nil); d.Granularity != policy.GranBuilding {
		t.Fatalf("stale cache after AddPreference: %+v", d)
	}
	if !c.RemovePreference(pref.ID) {
		t.Fatal("remove failed")
	}
	if d := c.Decide(req, nil); d.Granularity != policy.GranExact {
		t.Fatalf("stale cache after RemovePreference: %+v", d)
	}
	if c.RemovePreference("ghost") {
		t.Error("ghost removal succeeded")
	}
}

func TestCachedNeverCachesNotifications(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	svcReg := cfg.Services
	svcReg.MustRegister(service.Service{
		ID: "bms-emergency", Name: "Emergency", Developer: service.DeveloperBuilding,
		Declares: []service.DataRequest{{
			ObsKind: sensor.ObsWiFiConnect, Purpose: policy.PurposeEmergencyResponse,
			Granularity: policy.GranExact,
		}},
	})
	c := NewCached(NewIndexed(cfg), 0)
	if err := c.AddPolicy(policy.Policy2EmergencyLocation("dbh")); err != nil {
		t.Fatal(err)
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := c.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	req := baseRequest()
	req.ServiceID = "bms-emergency"
	req.Purpose = policy.PurposeEmergencyResponse
	for i := 0; i < 3; i++ {
		d := c.Decide(req, nil)
		if !d.Allowed || len(d.Notifications) == 0 {
			t.Fatalf("call %d: override notification lost: %+v", i, d)
		}
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Errorf("override decisions served from cache: %d hits", hits)
	}
}

// TestCachedEquivalenceProperty: the cached engine must agree with its
// inner engine on randomized workloads (notification decisions are
// exempt from caching by design, so they agree trivially too).
func TestCachedEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	reference := NewIndexed(cfg)
	cached := NewCached(NewIndexed(cfg), 128) // small cap to exercise resets

	users := []string{"u0", "u1", "u2"}
	kinds := []sensor.ObservationKind{sensor.ObsWiFiConnect, sensor.ObsBLESighting, ""}
	for i := 0; i < 100; i++ {
		p := policy.Preference{
			ID:     fmt.Sprintf("p-%d", i),
			UserID: users[r.Intn(len(users))],
			Scope:  policy.Scope{ObsKind: kinds[r.Intn(len(kinds))]},
			Rule:   policy.Rule{Action: policy.Action(1 + r.Intn(2))},
		}
		if r.Intn(3) == 0 {
			p.Scope.Window = policy.AfterHours
		}
		if err := reference.AddPreference(p); err != nil {
			t.Fatal(err)
		}
		if err := cached.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 3000; trial++ {
		req := Request{
			ServiceID:   "concierge",
			Purpose:     policy.PurposeProvidingService,
			Kind:        kinds[r.Intn(2)],
			SubjectID:   users[r.Intn(len(users))],
			SpaceID:     "dbh",
			Granularity: policy.GranExact,
			// Coarse time grid so repeats occur and the cache is hot.
			Time: time.Date(2017, time.June, 7, r.Intn(24), 0, 0, 0, time.UTC),
		}
		a := normalizeDecision(reference.Decide(req, nil))
		b := normalizeDecision(cached.Decide(req, nil))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: cached disagrees\nreq: %+v\nref:    %+v\ncached: %+v", trial, req, a, b)
		}
	}
	hits, misses := cached.Stats()
	if hits == 0 {
		t.Errorf("cache never hit (%d misses)", misses)
	}
}

func TestCachedGroupsInKey(t *testing.T) {
	cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: true}
	c := NewCached(NewIndexed(cfg), 0)
	bp := policy.Policy2EmergencyLocation("dbh")
	bp.Scope.SubjectGroups = []profile.Group{profile.GroupStudent}
	if err := c.AddPolicy(bp); err != nil {
		t.Fatal(err)
	}
	for _, p := range policy.Preference2NoLocation("mary") {
		if err := c.AddPreference(p); err != nil {
			t.Fatal(err)
		}
	}
	req := baseRequest()
	req.ServiceID = ""
	req.Purpose = policy.PurposeEmergencyResponse
	// Student: override applies. Faculty: deny stands. The cache must
	// not conflate them.
	if d := c.Decide(req, []profile.Group{profile.GroupStudent}); !d.Allowed {
		t.Fatalf("student decision = %+v", d)
	}
	if d := c.Decide(req, []profile.Group{profile.GroupFaculty}); d.Allowed {
		t.Fatalf("faculty decision served from student cache entry: %+v", d)
	}
}
