package enforce

import (
	"testing"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
	"github.com/tippers/tippers/internal/service"
)

func TestGroupDefaultCheck(t *testing.T) {
	good := GroupDefault{
		ID:     "visitors-coarse",
		Groups: []profile.Group{profile.GroupVisitor},
		Rule:   policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranBuilding},
	}
	if err := good.Check(); err != nil {
		t.Errorf("valid default rejected: %v", err)
	}
	bad := good
	bad.ID = ""
	if err := bad.Check(); err == nil {
		t.Error("ID-less default accepted")
	}
	bad = good
	bad.Scope.SubjectIDs = []string{"mary"}
	if err := bad.Check(); err == nil {
		t.Error("subject-scoped default accepted")
	}
	bad = good
	bad.Rule = policy.Rule{}
	if err := bad.Check(); err == nil {
		t.Error("invalid rule accepted")
	}
}

func groupDefaultEngines(t testing.TB) map[string]Engine {
	t.Helper()
	cfg := Config{
		Spaces:       testModel(t),
		Services:     testServices(t),
		DefaultAllow: true,
		GroupDefaults: []GroupDefault{
			{
				ID:     "visitors-coarse",
				Groups: []profile.Group{profile.GroupVisitor},
				Scope:  policy.Scope{ObsKind: sensor.ObsWiFiConnect},
				Rule:   policy.Rule{Action: policy.ActionLimit, MaxGranularity: policy.GranBuilding},
			},
			{
				ID:    "everyone-no-marketing",
				Scope: policy.Scope{Purposes: []policy.Purpose{policy.PurposeMarketing}},
				Rule:  policy.Rule{Action: policy.ActionDeny},
			},
		},
	}
	return map[string]Engine{
		"naive":           NewNaive(cfg),
		"compiled-nomemo": NewIndexed(cfg),
		"compiled":        NewCompiled(cfg),
	}
}

func TestGroupDefaultsApply(t *testing.T) {
	for name, eng := range groupDefaultEngines(t) {
		req := baseRequest()
		// A visitor with no personal preference: group default caps
		// location at building granularity.
		d := eng.Decide(req, []profile.Group{profile.GroupVisitor})
		if !d.Allowed || d.Granularity != policy.GranBuilding {
			t.Errorf("%s: visitor decision = %+v", name, d)
		}
		if len(d.MatchedDefaults) != 1 || d.MatchedDefaults[0] != "visitors-coarse" {
			t.Errorf("%s: matched defaults = %v", name, d.MatchedDefaults)
		}
		// A student is untouched by the visitor default.
		d = eng.Decide(req, []profile.Group{profile.GroupStudent})
		if !d.Allowed || d.Granularity != policy.GranExact {
			t.Errorf("%s: student decision = %+v", name, d)
		}
	}
}

func TestGroupDefaultPersonalPreferenceWins(t *testing.T) {
	for name, eng := range groupDefaultEngines(t) {
		// The visitor explicitly allows fine-grained concierge access:
		// their own choice beats the group default.
		if err := eng.AddPreference(policy.Preference3ConciergeFineLocation("mary", "concierge")); err != nil {
			t.Fatal(err)
		}
		d := eng.Decide(baseRequest(), []profile.Group{profile.GroupVisitor})
		if !d.Allowed || d.Granularity != policy.GranExact {
			t.Errorf("%s: personal preference lost to group default: %+v", name, d)
		}
		if len(d.MatchedDefaults) != 0 {
			t.Errorf("%s: defaults consulted despite a personal match: %v", name, d.MatchedDefaults)
		}
	}
}

func TestUngroupedDefaultAppliesToEveryone(t *testing.T) {
	svcReg := testServices(t)
	svcReg.MustRegister(service.Service{
		ID: "ad-service", Name: "Ads", Developer: service.DeveloperThirdParty,
		Declares: []service.DataRequest{{
			ObsKind: sensor.ObsWiFiConnect, Purpose: policy.PurposeMarketing,
			Granularity: policy.GranExact,
		}},
	})
	cfg := Config{
		Spaces:       testModel(t),
		Services:     svcReg,
		DefaultAllow: true,
		GroupDefaults: []GroupDefault{{
			ID:    "everyone-no-marketing",
			Scope: policy.Scope{Purposes: []policy.Purpose{policy.PurposeMarketing}},
			Rule:  policy.Rule{Action: policy.ActionDeny},
		}},
	}
	for name, eng := range map[string]Engine{"naive": NewNaive(cfg), "compiled": NewCompiled(cfg)} {
		req := baseRequest()
		req.ServiceID = "ad-service"
		req.Purpose = policy.PurposeMarketing
		d := eng.Decide(req, []profile.Group{profile.GroupFaculty})
		if d.Allowed {
			t.Errorf("%s: marketing default-deny missed: %+v", name, d)
		}
		// Other purposes untouched.
		if d := eng.Decide(baseRequest(), nil); !d.Allowed {
			t.Errorf("%s: service purpose wrongly denied: %+v", name, d)
		}
	}
}
