package enforce

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/sensor"
)

// byteFeed turns a fuzzer-controlled byte string into a stream of
// bounded choices; exhausted input yields zeros, so every prefix is a
// valid (shorter) document set.
type byteFeed struct {
	data []byte
	i    int
}

func (b *byteFeed) next() byte {
	if b.i >= len(b.data) {
		return 0
	}
	v := b.data[b.i]
	b.i++
	return v
}

func (b *byteFeed) pick(n int) int { return int(b.next()) % n }

// FuzzCompilePolicy feeds fuzzer-shaped policy and preference
// documents — valid, invalid, and degenerate — through the compiler
// and holds two invariants: compilation never panics, and on probe
// requests the compiled engine decides exactly like the naive
// reference, including which documents were accepted at registration.
func FuzzCompilePolicy(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte("\x05window-wrap\xff\x00\x81prefs"))
	f.Add([]byte{9, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6})
	f.Add([]byte{255, 254, 253, 0, 128, 64, 32, 16, 8, 4, 2, 1, 0, 0, 255, 255})

	users := []string{"mary", "bob", "u0", ""}
	kinds := []sensor.ObservationKind{"", sensor.ObsWiFiConnect, sensor.ObsOccupancy, sensor.ObsPowerReading, "bogus-kind"}
	spaces := []string{"", "dbh", "dbh/1", "dbh/2/r1", "ghost", "dbh/2/r9"}
	services := []string{"", "concierge", "smart-meeting", "food-delivery", "nope"}
	purposes := []policy.Purpose{
		policy.PurposeAny, policy.PurposeProvidingService, policy.PurposeEmergencyResponse,
		policy.PurposeSecurity, policy.PurposeMarketing, policy.Purpose("made-up"),
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		b := &byteFeed{data: data}
		cfg := Config{Spaces: testModel(t), Services: testServices(t), DefaultAllow: b.pick(2) == 0}
		naive := NewNaive(cfg)
		engines := []Engine{NewIndexed(cfg), NewCompiled(cfg)}

		randScope := func() policy.Scope {
			var s policy.Scope
			s.SpaceID = spaces[b.pick(len(spaces))]
			s.ObsKind = kinds[b.pick(len(kinds))]
			s.ServiceID = services[b.pick(len(services))]
			if n := b.pick(3); n > 0 {
				for i := 0; i < n; i++ {
					s.Purposes = append(s.Purposes, purposes[b.pick(len(purposes))])
				}
			}
			if b.pick(3) == 0 {
				// Arbitrary windows, including inverted and out-of-range
				// minute values the fuzzer invents.
				s.Window = policy.DailyWindow{
					Start: b.pick(256) * 7,
					End:   b.pick(256) * 7,
					Days:  policy.Weekdays(b.next()),
				}
			}
			if b.pick(4) == 0 {
				s.SensorType = sensor.Type(b.pick(10))
			}
			return s
		}

		nPrefs := b.pick(12)
		for i := 0; i < nPrefs; i++ {
			p := policy.Preference{
				ID:     fmt.Sprintf("p%d", b.pick(8)), // collisions exercise replace
				UserID: users[b.pick(len(users))],
				Scope:  randScope(),
				Rule: policy.Rule{
					Action:          policy.Action(b.pick(5)), // includes invalid actions
					MaxGranularity:  policy.Granularity(b.pick(8)),
					NoiseEpsilon:    float64(b.pick(8)) / 2,
					MinAggregationK: b.pick(4),
				},
			}
			if b.pick(5) == 0 {
				// Preferences must not carry subject scopes; Check
				// rejects these and both engines must agree.
				p.Scope.SubjectIDs = []string{"mary"}
			}
			errN := naive.AddPreference(p)
			for _, e := range engines {
				if errC := e.AddPreference(p); (errN == nil) != (errC == nil) {
					t.Fatalf("AddPreference(%+v): naive err=%v, %s err=%v", p, errN, EngineName(e), errC)
				}
			}
		}
		nPols := b.pick(5)
		for i := 0; i < nPols; i++ {
			bp := policy.BuildingPolicy{
				ID:       fmt.Sprintf("bp%d", i),
				Name:     "fuzz",
				Owner:    "facilities",
				Kind:     policy.PolicyKind(b.pick(4)),
				Scope:    randScope(),
				Override: b.pick(2) == 0, // often invalid: no safety-critical purpose
			}
			errN := naive.AddPolicy(bp)
			for _, e := range engines {
				if errC := e.AddPolicy(bp); (errN == nil) != (errC == nil) {
					t.Fatalf("AddPolicy(%+v): naive err=%v, %s err=%v", bp, errN, EngineName(e), errC)
				}
			}
		}
		if b.pick(3) == 0 && nPrefs > 0 {
			id := fmt.Sprintf("p%d", b.pick(8))
			want := naive.RemovePreference(id)
			for _, e := range engines {
				if got := e.RemovePreference(id); got != want {
					t.Fatalf("RemovePreference(%s): naive %v, %s %v", id, want, EngineName(e), got)
				}
			}
		}

		for probe := 0; probe < 4; probe++ {
			req := Request{
				ServiceID:   services[b.pick(len(services))],
				Purpose:     purposes[b.pick(len(purposes))],
				Kind:        kinds[b.pick(len(kinds))],
				SubjectID:   users[b.pick(len(users))],
				SpaceID:     spaces[b.pick(len(spaces))],
				Granularity: policy.Granularity(b.pick(8)),
			}
			if b.pick(8) != 0 {
				req.Time = time.Date(2017, time.Month(1+b.pick(12)), 1+b.pick(28),
					b.pick(24), b.pick(60), 0, 0, time.UTC)
			}
			var groups []profile.Group
			if b.pick(2) == 0 {
				groups = []profile.Group{profile.Group([]string{"student", "faculty", "weird"}[b.pick(3)])}
			}
			want := normalizeDecision(naive.Decide(req, groups))
			for _, e := range engines {
				if got := normalizeDecision(e.Decide(req, groups)); !reflect.DeepEqual(want, got) {
					t.Fatalf("probe %d: %s disagrees with naive\nreq: %+v\nnaive: %+v\ngot: %+v",
						probe, EngineName(e), req, want, got)
				}
			}
		}
	})
}
