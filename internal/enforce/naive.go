package enforce

import (
	"sync"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
)

// Naive is the baseline engine: every Decide scans every installed
// policy and every installed preference. It is the "unoptimized
// enforcement" arm of experiment E2 — correct, simple, and linear in
// the total rule count.
type Naive struct {
	eval evaluator

	mu       sync.RWMutex
	policies []policy.BuildingPolicy
	prefs    []policy.Preference
	prefIdx  map[string]int // preference ID -> slice position
}

var _ Engine = (*Naive)(nil)

// NewNaive returns an empty naive engine.
func NewNaive(cfg Config) *Naive {
	return &Naive{
		eval:    evaluator{cfg: cfg},
		prefIdx: make(map[string]int),
	}
}

// AddPolicy implements Engine.
func (n *Naive) AddPolicy(p policy.BuildingPolicy) error {
	if err := p.Check(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.policies = append(n.policies, p)
	return nil
}

// AddPreference implements Engine.
func (n *Naive) AddPreference(p policy.Preference) error {
	if err := p.Check(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if i, ok := n.prefIdx[p.ID]; ok {
		n.prefs[i] = p // replace in place
		return nil
	}
	n.prefIdx[p.ID] = len(n.prefs)
	n.prefs = append(n.prefs, p)
	return nil
}

// RemovePreference implements Engine.
func (n *Naive) RemovePreference(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	i, ok := n.prefIdx[id]
	if !ok {
		return false
	}
	last := len(n.prefs) - 1
	n.prefs[i] = n.prefs[last]
	n.prefIdx[n.prefs[i].ID] = i
	n.prefs = n.prefs[:last]
	delete(n.prefIdx, id)
	return true
}

// Decide implements Engine by scanning everything.
func (n *Naive) Decide(req Request, subjectGroups []profile.Group) Decision {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eval.decide(req, subjectGroups, n.policies, n.prefs)
}

// Counts implements Engine.
func (n *Naive) Counts() (int, int) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.policies), len(n.prefs)
}
