package enforce

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/tippers/tippers/internal/policy"
	"github.com/tippers/tippers/internal/profile"
	"github.com/tippers/tippers/internal/telemetry"
)

// metricsRegisterer is implemented by engines that can expose their
// internals on a telemetry registry (Compiled, Instrumented).
type metricsRegisterer interface {
	RegisterMetrics(*telemetry.Registry)
}

// Instrumented wraps an Engine with decision-latency and outcome
// metrics. It is the §V.C measurement harness: the same engine with
// and without this wrapper is what BenchmarkTelemetryOverhead
// compares, and the histogram it feeds is the decision-latency
// evidence the ROADMAP's scaling goal needs.
// sampleMask selects which decisions get timed: 1 in 8. Counters see
// every decision; the latency histogram sees an unbiased sample.
// Reading the clock twice costs more than the decision bookkeeping
// itself on the indexed fast path, so always-on timing would blow the
// <5% overhead budget that makes permanent instrumentation viable.
const sampleMask = 7

type Instrumented struct {
	inner Engine

	// decisions doubles as the timing-sample selector, so the hot
	// path pays one atomic add, not two. It is exposed through a
	// CounterFunc rather than a Counter.
	decisions atomic.Uint64
	decide    *telemetry.Histogram
	denials   *telemetry.Counter
	overrides *telemetry.Counter
}

var _ Engine = (*Instrumented)(nil)

// EngineName returns a short flavor name for an engine ("naive",
// "compiled", "compiled-nomemo", ...), used as a metric label and in
// decision traces.
func EngineName(e Engine) string {
	switch v := e.(type) {
	case *Naive:
		return "naive"
	case *Compiled:
		return v.String()
	case *Instrumented:
		return EngineName(v.inner)
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprintf("%T", e)
	}
}

// Instrument wraps inner, registering its metrics (labeled with the
// engine flavor) on r.
func Instrument(inner Engine, r *telemetry.Registry) *Instrumented {
	labels := telemetry.Labels{"engine": EngineName(inner)}
	i := &Instrumented{
		inner: inner,
		decide: r.HistogramWith("tippers_enforce_decide_seconds",
			"Query-time enforcement decision latency (1-in-8 sample).", labels, nil),
		denials: r.CounterWith("tippers_enforce_denials_total",
			"Enforcement decisions that denied the flow.", labels),
		overrides: r.CounterWith("tippers_enforce_overrides_total",
			"Decisions where a safety-critical policy overrode preferences.", labels),
	}
	r.CounterFuncWith("tippers_enforce_decisions_total",
		"Enforcement decisions made.", labels, func() float64 {
			return float64(i.decisions.Load())
		})
	if reg, ok := inner.(metricsRegisterer); ok {
		reg.RegisterMetrics(r)
	}
	return i
}

// AddPolicy implements Engine.
func (i *Instrumented) AddPolicy(p policy.BuildingPolicy) error { return i.inner.AddPolicy(p) }

// AddPreference implements Engine.
func (i *Instrumented) AddPreference(p policy.Preference) error { return i.inner.AddPreference(p) }

// RemovePreference implements Engine.
func (i *Instrumented) RemovePreference(id string) bool { return i.inner.RemovePreference(id) }

// Counts implements Engine.
func (i *Instrumented) Counts() (int, int) { return i.inner.Counts() }

// Decide implements Engine, timing a 1-in-8 sample of inner calls.
func (i *Instrumented) Decide(req Request, subjectGroups []profile.Group) Decision {
	var d Decision
	if i.decisions.Add(1)&sampleMask == 0 {
		t0 := time.Now()
		d = i.inner.Decide(req, subjectGroups)
		i.decide.ObserveSince(t0)
	} else {
		d = i.inner.Decide(req, subjectGroups)
	}
	if !d.Allowed {
		i.denials.Inc()
	}
	if len(d.Overridden) > 0 {
		i.overrides.Inc()
	}
	return d
}

// Unwrap returns the wrapped engine.
func (i *Instrumented) Unwrap() Engine { return i.inner }

// Invalidate forwards to the wrapped engine's memo invalidation when
// it has one, so an instrumented engine still joins core's one-path
// cache-invalidation fan-out.
func (i *Instrumented) Invalidate() {
	if inv, ok := i.inner.(interface{ Invalidate() }); ok {
		inv.Invalidate()
	}
}

// String identifies the engine in experiment output.
func (i *Instrumented) String() string {
	return "instrumented(" + EngineName(i.inner) + ")"
}
